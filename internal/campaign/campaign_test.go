package campaign

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"safemeasure/internal/telemetry"
)

// smallPlan is a cheap, representative matrix: one censoring scenario with
// its three applicable techniques, two trials each.
func smallPlan(t *testing.T, seed int64) *Plan {
	t.Helper()
	p, err := NewPlan(PlanConfig{Scenarios: []string{"dns-poison"}, Trials: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunCompletesInPlanOrder(t *testing.T) {
	p := smallPlan(t, 1)
	var streamed atomic.Int64
	recs, err := Run(p, Options{Workers: 3, OnRecord: func(RunRecord) { streamed.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(p.Specs) {
		t.Fatalf("records = %d, want %d", len(recs), len(p.Specs))
	}
	if int(streamed.Load()) != len(p.Specs) {
		t.Fatalf("OnRecord fired %d times, want %d", streamed.Load(), len(p.Specs))
	}
	for i, rec := range recs {
		spec := p.Specs[i]
		if rec.Error != "" {
			t.Fatalf("run %d (%s/%s) failed: %s", i, spec.Technique, spec.Scenario, rec.Error)
		}
		if rec.Technique != spec.Technique || rec.Scenario != spec.Scenario ||
			rec.Trial != spec.Trial || rec.Seed != spec.Seed {
			t.Fatalf("record %d out of plan order: %+v vs spec %+v", i, rec, spec)
		}
		if !rec.Correct {
			t.Errorf("%s/%s trial %d: verdict %s against ground truth %v",
				rec.Technique, rec.Scenario, rec.Trial, rec.Verdict, rec.GroundTruth)
		}
	}
}

// sortedJSONL marshals records one per line and sorts the lines — the
// scheduling-independent canonical form of a campaign output file.
func sortedJSONL(t *testing.T, recs []RunRecord) string {
	t.Helper()
	lines := make([]string, len(recs))
	for i, rec := range recs {
		raw, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = string(raw)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	// The satellite acceptance check: same campaign seed, different worker
	// counts, byte-identical sorted JSONL.
	var outputs []string
	for _, workers := range []int{1, 4} {
		var buf bytes.Buffer
		sink := NewJSONLSink(&buf)
		recs, err := Run(smallPlan(t, 42), Options{Workers: workers, OnRecord: sink.Write})
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		// The streamed sink and the returned slice hold the same records.
		streamed, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if sortedJSONL(t, streamed) != sortedJSONL(t, recs) {
			t.Fatalf("workers=%d: sink contents diverge from returned records", workers)
		}
		outputs = append(outputs, sortedJSONL(t, recs))
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("worker count changed campaign results:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			outputs[0], outputs[1])
	}
}

// TestImpairedCampaignDeterministicAcrossWorkerCounts extends the
// determinism guarantee to the impairment axis and the retry layer: lossy,
// reordering, and corrupting links draw all their randomness from the lab
// seed, and every hot-path counter (including retry counters) merges
// commutatively, so sorted records AND final counter values are
// byte-identical for any worker count.
func TestImpairedCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	var outputs, counters []string
	for _, workers := range []int{1, 4} {
		p, err := NewPlan(PlanConfig{
			Scenarios:   []string{"dns-poison"},
			Impairments: []string{"lossy20", "reorder", "corrupt"},
			Trials:      1,
			Seed:        99,
		})
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		recs, err := Run(p, Options{Workers: workers, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if rec.Error != "" {
				t.Fatalf("impaired run failed: %+v", rec)
			}
			if rec.Impairment == "" {
				t.Fatalf("impaired record lost its impairment: %+v", rec)
			}
		}
		outputs = append(outputs, sortedJSONL(t, recs))
		counters = append(counters, reg.Snapshot().CountersText())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("impaired records diverge across worker counts:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
	if counters[0] != counters[1] {
		t.Fatalf("impaired counters diverge across worker counts:\n%s\nvs\n%s", counters[0], counters[1])
	}
}

func TestRunRecoversPanics(t *testing.T) {
	p := smallPlan(t, 7)
	boom := p.Specs[2]
	recs, err := Run(p, Options{
		Workers: 2,
		Execute: func(spec RunSpec, horizon time.Duration, claim func() bool) RunRecord {
			if spec.Index == boom.Index {
				panic("lab exploded")
			}
			rec := Execute(spec, horizon)
			claim()
			return rec
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if i == boom.Index {
			if !strings.Contains(rec.Error, "panic") || !strings.Contains(rec.Error, "lab exploded") {
				t.Fatalf("panic not captured: %+v", rec)
			}
			if rec.Technique != boom.Technique || rec.Seed != boom.Seed {
				t.Fatalf("panic record lost its coordinates: %+v", rec)
			}
		} else if rec.Error != "" {
			t.Fatalf("run %d poisoned by neighbour's panic: %s", i, rec.Error)
		}
	}
}

func TestRunTimesOutWedgedRuns(t *testing.T) {
	p := smallPlan(t, 8).Filter(func(s RunSpec) bool { return s.Index < 2 })
	recs, err := Run(p, Options{
		Workers: 2,
		Timeout: 20 * time.Millisecond,
		Execute: func(spec RunSpec, _ time.Duration, claim func() bool) RunRecord {
			if spec.Index == 0 {
				time.Sleep(5 * time.Second) // a wedged simulator
			}
			// A fast stub, not a real lab run: the healthy run must finish
			// well inside the timeout even under -race instrumentation.
			rec := RunRecord{Scenario: spec.Scenario, Trial: spec.Trial}
			rec.Technique = spec.Technique
			rec.Seed = spec.Seed
			claim()
			return rec
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(recs[0].Error, "timeout") {
		t.Fatalf("wedged run not timed out: %+v", recs[0])
	}
	if recs[1].Error != "" {
		t.Fatalf("healthy run caught the timeout: %+v", recs[1])
	}
}

// TestAbandonedRunPublishesNothing pins the pool's post-timeout contract:
// a wedged run the pool abandoned must lose the claim race, so it can never
// emit a trace or merge metrics after its timeout error record went out —
// and because publication is atomic, results are identical for any worker
// count. Run under -race, this also proves the claim gate is the only
// synchronization the abandoned goroutine needs.
func TestAbandonedRunPublishesNothing(t *testing.T) {
	const wedge = 150 * time.Millisecond
	var outputs, counters []string
	for _, workers := range []int{1, 8} {
		p := smallPlan(t, 11) // 6 specs
		wedged := p.Specs[1]
		reg := telemetry.NewRegistry()
		var mu sync.Mutex
		var traced []string
		settled := make(chan bool, 1) // claim outcome of the wedged run
		recs, err := Run(p, Options{
			Workers: workers,
			Timeout: 20 * time.Millisecond,
			Metrics: reg,
			Execute: func(spec RunSpec, _ time.Duration, claim func() bool) RunRecord {
				if spec.Index == wedged.Index {
					time.Sleep(wedge)
				}
				rec := RunRecord{Scenario: spec.Scenario, Trial: spec.Trial}
				rec.Technique = spec.Technique
				rec.Seed = spec.Seed
				ok := claim()
				if spec.Index == wedged.Index {
					settled <- ok
				}
				if !ok {
					return rec // abandoned: publish nothing
				}
				// The default executor's publication step, emulated: a trace
				// plus a shared-metric bump, both gated on the claim.
				mu.Lock()
				traced = append(traced, spec.Technique)
				mu.Unlock()
				reg.Counter("test_published_total").Inc()
				return rec
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Let the abandoned goroutine finish its claim attempt before
		// inspecting shared state (and before the test ends, for -race).
		if ok := <-settled; ok {
			t.Fatal("abandoned run won the claim race after its timeout record was emitted")
		}
		if !strings.Contains(recs[wedged.Index].Error, "timeout") {
			t.Fatalf("wedged run record: %+v", recs[wedged.Index])
		}
		mu.Lock()
		if len(traced) != len(p.Specs)-1 {
			t.Fatalf("traces = %v, want one per healthy run", traced)
		}
		mu.Unlock()
		if got := reg.Counter("test_published_total").Value(); got != int64(len(p.Specs)-1) {
			t.Fatalf("published = %d, want %d", got, len(p.Specs)-1)
		}
		outputs = append(outputs, sortedJSONL(t, recs))
		counters = append(counters, reg.Snapshot().CountersText())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("records diverge across worker counts:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
	if counters[0] != counters[1] {
		t.Fatalf("counters diverge across worker counts:\n%s\nvs\n%s", counters[0], counters[1])
	}
}

func TestRunRejectsEmptyPlan(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Fatal("nil plan accepted")
	}
	if _, err := Run(&Plan{}, Options{}); err == nil {
		t.Fatal("empty plan accepted")
	}
}

func TestExecuteErrorPaths(t *testing.T) {
	rec := Execute(RunSpec{Technique: "no-such", Scenario: "open"}, 0)
	if !strings.Contains(rec.Error, "unknown technique") {
		t.Fatalf("rec = %+v", rec)
	}
	rec = Execute(RunSpec{Technique: "spam", Scenario: "no-such"}, 0)
	if !strings.Contains(rec.Error, "unknown scenario") {
		t.Fatalf("rec = %+v", rec)
	}
}
