package campaign

import (
	"errors"
	"sync"

	"safemeasure/internal/telemetry"
)

// BreakerOpenError is the exact Error string of a run the circuit breaker
// skipped. Skipped runs still emit RunRecords — the sink, aggregates, and
// resume all see them — but they executed nothing: DoneSet treats them like
// any other error record, so a later -resume re-runs exactly the skipped
// coordinates.
const BreakerOpenError = "skipped: breaker open"

// errBreakerOpen backs the skip records the pool emits without executing.
var errBreakerOpen = errors.New(BreakerOpenError)

// IsBreakerSkip reports whether a record is a breaker skip rather than a run
// that executed and failed. The failure budget excludes skips: a breaker
// declining to re-probe a sick cell is the budget being *protected*, not
// spent.
func IsBreakerSkip(rec RunRecord) bool { return rec.Error == BreakerOpenError }

// BreakerState is the classic three-state circuit-breaker lifecycle.
type BreakerState int

const (
	// BreakerClosed passes runs through and watches their outcomes.
	BreakerClosed BreakerState = iota
	// BreakerOpen skips runs for the cooldown, emitting skip records.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe run through; its outcome
	// decides between closing again and another open cooldown.
	BreakerHalfOpen
)

// String renders the state for /progress and the per-cell state gauge.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker tuning defaults.
const (
	// DefaultBreakerWindow is the per-cell completed-run window the error
	// rate is computed over.
	DefaultBreakerWindow = 16
	// DefaultBreakerCooldown is how many scheduled runs an open breaker
	// skips before going half-open. Counting scheduled runs, not wall or
	// virtual time, keeps the cooldown meaningful at any campaign speed and
	// deterministic for a fixed completion order.
	DefaultBreakerCooldown = 4
)

// BreakerConfig parameterizes a BreakerSet. Either trigger may be used
// alone; both active means whichever fires first opens the breaker.
type BreakerConfig struct {
	// Consecutive opens the breaker after this many consecutive failed runs
	// in a cell; <= 0 disables the consecutive trigger.
	Consecutive int
	// Rate opens the breaker when the failure fraction over the last Window
	// completed runs of a cell reaches this value (only once the window is
	// full, so a single early failure cannot trip it); <= 0 disables.
	Rate float64
	// Window is the completed-run window Rate is computed over; 0 means
	// DefaultBreakerWindow.
	Window int
	// Cooldown is how many scheduled runs an open breaker skips before
	// allowing a half-open probe; 0 means DefaultBreakerCooldown.
	Cooldown int
}

// cellBreaker is one cell's breaker state. All fields are guarded by the
// owning BreakerSet's mutex.
type cellBreaker struct {
	state        BreakerState
	consec       int    // current consecutive-failure streak
	window       []bool // ring of recent outcomes, true = failure
	wi, wn       int    // ring write index and fill
	fails        int    // failures currently in the ring
	cooldownLeft int    // skips remaining before half-open
	probing      bool   // a half-open probe is in flight
	gauge        *telemetry.Gauge
}

// BreakerSet holds one circuit breaker per campaign cell (scenario ×
// impairment × technique). The zero value is not useful; use NewBreakerSet.
// A nil *BreakerSet is valid everywhere and allows everything, so the pool
// has a single code path whether breakers are configured or not.
//
// One BreakerSet may be shared between Options.Breakers and a Progress (for
// the /progress breaker column); all methods are safe for concurrent use.
type BreakerSet struct {
	cfg BreakerConfig

	mu    sync.Mutex
	cells map[[3]string]*cellBreaker
	reg   *telemetry.Registry
	opens *telemetry.Counter
	skips *telemetry.Counter
}

// NewBreakerSet builds a breaker per cell on demand with cfg, applying the
// Window/Cooldown defaults. A config with neither trigger active still
// yields a working set that simply never opens.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	if cfg.Window <= 0 {
		cfg.Window = DefaultBreakerWindow
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultBreakerCooldown
	}
	return &BreakerSet{cfg: cfg, cells: make(map[[3]string]*cellBreaker)}
}

// instrument binds the set to a registry: transition counters plus one
// labeled state gauge per cell (0 closed, 1 open, 2 half-open). Called by
// RunContext; reg may be nil (every handle is nil-safe).
func (b *BreakerSet) instrument(reg *telemetry.Registry) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reg = reg
	b.opens = reg.Counter("campaign_breaker_open_total")
	b.skips = reg.Counter("campaign_breaker_skipped_total")
	for key, c := range b.cells {
		c.gauge = b.stateGauge(key)
		c.gauge.Set(int64(c.state))
	}
}

// stateGauge resolves the labeled per-cell state gauge (nil without a
// registry). Callers hold b.mu.
func (b *BreakerSet) stateGauge(key [3]string) *telemetry.Gauge {
	if b.reg == nil {
		return nil
	}
	return b.reg.Gauge(telemetry.Labels("campaign_breaker_state",
		"scenario", key[0], "impairment", key[1], "technique", key[2]))
}

// cellLocked returns the cell's breaker, creating it closed. Callers hold
// b.mu.
func (b *BreakerSet) cellLocked(key [3]string) *cellBreaker {
	c, ok := b.cells[key]
	if !ok {
		c = &cellBreaker{window: make([]bool, b.cfg.Window), gauge: b.stateGauge(key)}
		b.cells[key] = c
	}
	return c
}

// cellKey maps a spec to its breaker cell, canonicalizing the pristine
// impairment the same way records and progress do.
func cellKey(spec RunSpec) [3]string {
	return [3]string{spec.Scenario, recordImpairment(spec.Impairment), spec.Technique}
}

// Allow decides whether a scheduled run of spec's cell may execute. probe is
// true when the run is the cell's half-open probe — thread it back into
// Record so the probe's outcome (and only the probe's) drives the half-open
// transition. A false allow means the pool must emit a BreakerOpenError skip
// record instead of executing.
func (b *BreakerSet) Allow(spec RunSpec) (allow, probe bool) {
	if b == nil {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.cellLocked(cellKey(spec))
	switch c.state {
	case BreakerOpen:
		c.cooldownLeft--
		if c.cooldownLeft <= 0 {
			c.setState(BreakerHalfOpen)
		}
		b.skips.Inc()
		return false, false
	case BreakerHalfOpen:
		if !c.probing {
			c.probing = true
			return true, true
		}
		b.skips.Inc()
		return false, false
	default:
		return true, false
	}
}

// Record feeds one executed run's outcome back into its cell. probe must be
// the value Allow returned for that run. Outcomes of runs that were already
// in flight when the breaker opened still update the streak and window but
// never transition an open or half-open breaker — only the probe does.
func (b *BreakerSet) Record(spec RunSpec, failure, probe bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.cellLocked(cellKey(spec))
	if probe {
		c.probing = false
		if failure {
			b.tripLocked(c)
		} else {
			c.consec, c.fails, c.wn, c.wi = 0, 0, 0, 0
			c.setState(BreakerClosed)
		}
		return
	}
	if failure {
		c.consec++
	} else {
		c.consec = 0
	}
	if c.wn == len(c.window) { // ring full: evict the oldest outcome
		if c.window[c.wi] {
			c.fails--
		}
	} else {
		c.wn++
	}
	c.window[c.wi] = failure
	if failure {
		c.fails++
	}
	c.wi = (c.wi + 1) % len(c.window)
	if c.state != BreakerClosed {
		return
	}
	tripConsec := b.cfg.Consecutive > 0 && c.consec >= b.cfg.Consecutive
	tripRate := b.cfg.Rate > 0 && c.wn == len(c.window) &&
		float64(c.fails)/float64(c.wn) >= b.cfg.Rate
	if tripConsec || tripRate {
		b.tripLocked(c)
	}
}

// tripLocked opens a breaker and arms its cooldown. Callers hold b.mu.
func (b *BreakerSet) tripLocked(c *cellBreaker) {
	c.cooldownLeft = b.cfg.Cooldown
	c.setState(BreakerOpen)
	b.opens.Inc()
}

// setState moves the cell and mirrors the transition into its gauge.
func (c *cellBreaker) setState(s BreakerState) {
	c.state = s
	c.gauge.Set(int64(s))
}

// State reports a cell's current breaker state (closed for cells that never
// saw a run, and always closed on a nil set).
func (b *BreakerSet) State(scenario, impairment, technique string) BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.cells[[3]string{scenario, recordImpairment(impairment), technique}]
	if !ok {
		return BreakerClosed
	}
	return c.state
}
