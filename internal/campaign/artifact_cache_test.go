package campaign

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"safemeasure/internal/archival"
	"safemeasure/internal/censor"
	"safemeasure/internal/lab"
)

// TestArtifactCacheSharesAcrossRuns: artifactsFor returns one *lab.Artifacts
// per scenario — concurrent lookups (the worker-pool access pattern) all see
// the same pointer, so a campaign compiles each scenario's rulesets once.
func TestArtifactCacheSharesAcrossRuns(t *testing.T) {
	sc, ok := lab.ScenarioByName("keyword-rst")
	if !ok {
		t.Fatal("keyword-rst scenario missing")
	}
	first, err := artifactsFor(sc)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([]*lab.Artifacts, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], _ = artifactsFor(sc)
		}(i)
	}
	wg.Wait()
	for i, art := range got {
		if art != first {
			t.Fatalf("lookup %d returned a different Artifacts pointer", i)
		}
	}
}

// TestArtifactCacheByteIdenticalAcrossWorkers is the cache's determinism
// contract: with the cache warm, the same plan executed by a 1-worker and an
// 8-worker pool yields byte-identical record streams — sharing compiled
// artifacts across concurrent runs leaks no per-run state. Run under -race
// by scripts/verify.sh, which is what would catch an unsynchronized write
// into the shared structures.
func TestArtifactCacheByteIdenticalAcrossWorkers(t *testing.T) {
	plan, err := NewPlan(PlanConfig{
		Scenarios: []string{"keyword-rst", "dns-poison", "blackhole"},
		Trials:    2,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var bodies [][]byte
	for _, workers := range []int{1, 8} {
		recs, err := Run(plan, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, rec := range recs {
			if rec.Error != "" {
				t.Fatalf("workers=%d %s/%s: %s", workers, rec.Technique, rec.Scenario, rec.Error)
			}
			line, err := archival.MarshalLine(rec)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(line)
		}
		bodies = append(bodies, buf.Bytes())
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatal("record stream differs between workers=1 and workers=8 with a warm artifact cache")
	}
}

// TestArtifactCacheMutatedConfigRejected: the cache keys by scenario name,
// so a scenario whose config was mutated after warming the cache maps to
// stale artifacts — and the lab must refuse them loudly (Artifacts carries
// its compile inputs for exactly this validation) instead of silently
// simulating another cell's censor.
func TestArtifactCacheMutatedConfigRejected(t *testing.T) {
	sc, ok := lab.ScenarioByName("keyword-rst")
	if !ok {
		t.Fatal("keyword-rst scenario missing")
	}
	if _, err := artifactsFor(sc); err != nil {
		t.Fatal(err)
	}

	mutated := sc
	mutated.NewCensor = func() censor.Config {
		cfg := sc.NewCensor()
		cfg.Keywords = append(append([]string(nil), cfg.Keywords...), "mutated-keyword")
		return cfg
	}
	stale, err := artifactsFor(mutated)
	if err != nil {
		t.Fatal(err)
	}

	labCfg := mutated.Config(1)
	labCfg.Artifacts = stale
	if _, err := lab.New(labCfg); err == nil {
		t.Fatal("lab.New accepted artifacts compiled for a different censor config")
	} else if !strings.Contains(err.Error(), "different censor config") {
		t.Fatalf("unexpected rejection reason: %v", err)
	}
}
