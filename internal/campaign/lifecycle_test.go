package campaign

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"safemeasure/internal/telemetry"
)

// stubRecord is a fast deterministic executor result for pool-mechanics
// tests that don't need a real lab run.
func stubRecord(spec RunSpec) RunRecord {
	rec := RunRecord{Scenario: spec.Scenario, Trial: spec.Trial}
	rec.Technique = spec.Technique
	rec.Seed = spec.Seed
	return rec
}

// TestRunContextCancelStopsDispatch pins the drain contract: after cancel,
// no new spec is dispatched, in-flight runs complete within the grace, and
// the partial result is plan-ordered with ctx.Err() reported.
func TestRunContextCancelStopsDispatch(t *testing.T) {
	p := smallPlan(t, 3) // 6 specs
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed atomic.Int64
	recs, err := RunContext(ctx, p, Options{
		Workers: 1,
		Grace:   -1, // drain fully
		Execute: func(spec RunSpec, _ time.Duration, claim func() bool) RunRecord {
			executed.Add(1)
			if spec.Index == 1 {
				cancel() // interrupt mid-campaign, from inside a run
			}
			rec := stubRecord(spec)
			claim()
			return rec
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// With one worker, at most one spec (index 2) can have been handed to
	// the channel before the cancel was observed by the dispatcher.
	if n := executed.Load(); n < 2 || n > 3 {
		t.Fatalf("executed %d runs, want 2 or 3 (dispatch must stop at cancel)", n)
	}
	if int64(len(recs)) != executed.Load() {
		t.Fatalf("returned %d records for %d executed runs", len(recs), executed.Load())
	}
	for i, rec := range recs {
		if rec.Error != "" {
			t.Fatalf("drained run %d carries error %q", i, rec.Error)
		}
		if rec.Technique != p.Specs[i].Technique || rec.Trial != p.Specs[i].Trial {
			t.Fatalf("partial records out of plan order at %d: %+v", i, rec)
		}
	}
	// A resume plan picks up exactly the missing specs.
	rest := p.Remaining(DoneSet(recs))
	if len(rest.Specs)+len(recs) != len(p.Specs) {
		t.Fatalf("resume plan has %d specs, records %d, plan %d",
			len(rest.Specs), len(recs), len(p.Specs))
	}
}

// TestRunContextGraceAbandonsStuckRuns: a run that ignores the cancel is
// abandoned once the drain grace expires, with an error record behind the
// same claim gate as the timeout path.
func TestRunContextGraceAbandonsStuckRuns(t *testing.T) {
	p := smallPlan(t, 4).Filter(func(s RunSpec) bool { return s.Index == 0 })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := make(chan struct{})
	defer close(release)
	settled := make(chan bool, 1)
	recs, err := RunContext(ctx, p, Options{
		Workers: 1,
		Grace:   20 * time.Millisecond,
		Execute: func(spec RunSpec, _ time.Duration, claim func() bool) RunRecord {
			cancel()
			<-release // wedged through cancel and grace
			settled <- claim()
			return stubRecord(spec)
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(recs) != 1 || !strings.Contains(recs[0].Error, "drain grace") {
		t.Fatalf("recs = %+v, want one grace-abandon error record", recs)
	}
	release <- struct{}{}
	if <-settled {
		t.Fatal("abandoned run won the claim after its grace-abandon record was emitted")
	}
}

// TestCallbackPanicDoesNotKillWorkers is the deadlock satellite: a panicking
// OnRecord callback used to kill its worker goroutine, which could strand
// the unbuffered spec feed forever. Now the panic is recovered, counted,
// and retained as the campaign error while every spec still executes.
func TestCallbackPanicDoesNotKillWorkers(t *testing.T) {
	p := smallPlan(t, 5) // 6 specs
	reg := telemetry.NewRegistry()
	var delivered atomic.Int64
	done := make(chan struct{})
	var recs []RunRecord
	var err error
	go func() {
		defer close(done)
		recs, err = Run(p, Options{
			Workers: 1, // a single worker: one unrecovered panic would deadlock dispatch
			Metrics: reg,
			Execute: func(spec RunSpec, _ time.Duration, claim func() bool) RunRecord {
				rec := stubRecord(spec)
				claim()
				return rec
			},
			OnRecord: func(rec RunRecord) {
				if delivered.Add(1) == 1 {
					panic("sink exploded")
				}
			},
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("campaign deadlocked after a callback panic")
	}
	if err == nil || !strings.Contains(err.Error(), "OnRecord callback panicked") {
		t.Fatalf("err = %v, want retained OnRecord panic", err)
	}
	if len(recs) != len(p.Specs) {
		t.Fatalf("records = %d, want %d (campaign must keep draining)", len(recs), len(p.Specs))
	}
	if got := delivered.Load(); got != int64(len(p.Specs)) {
		t.Fatalf("OnRecord fired %d times, want %d", got, len(p.Specs))
	}
	if got := reg.Counter("campaign_callback_panics_total").Value(); got != 1 {
		t.Fatalf("campaign_callback_panics_total = %d, want 1", got)
	}
}

// TestOnTracePanicRetained extends the guard to OnTrace, which runs inside
// the default (instrumented) executor: the run's record must survive even
// though its trace callback blew up.
func TestOnTracePanicRetained(t *testing.T) {
	p := smallPlan(t, 6).Filter(func(s RunSpec) bool { return s.Index < 2 })
	var traces atomic.Int64
	recs, err := Run(p, Options{
		Workers: 2,
		OnTrace: func(rt RunTrace) {
			if traces.Add(1) == 1 {
				panic("trace sink exploded")
			}
		},
	})
	if err == nil || !strings.Contains(err.Error(), "OnTrace callback panicked") {
		t.Fatalf("err = %v, want retained OnTrace panic", err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	for i, rec := range recs {
		if rec.Error != "" {
			t.Fatalf("record %d poisoned by its trace callback: %q", i, rec.Error)
		}
	}
}

// TestTimeoutLosesClaimRaceToRun covers the runGuarded race the timeout
// path must tolerate: the timer fires, but the run wins the claim before
// the pool's claim attempt. The pool must then take the run's real record —
// no duplicate, no spurious timeout error.
func TestTimeoutLosesClaimRaceToRun(t *testing.T) {
	p := smallPlan(t, 9).Filter(func(s RunSpec) bool { return s.Index == 0 })
	var mu sync.Mutex
	var seen []RunRecord
	recs, err := Run(p, Options{
		Workers: 1,
		Timeout: 25 * time.Millisecond,
		Execute: func(spec RunSpec, _ time.Duration, claim func() bool) RunRecord {
			if !claim() {
				t.Error("run lost the claim before the timeout could have fired")
			}
			// Hold the claimed run well past the timer so the pool's
			// timeout branch runs, loses claim(), and must wait for us.
			time.Sleep(100 * time.Millisecond)
			rec := stubRecord(spec)
			rec.Verdict = "accessible"
			return rec
		},
		OnRecord: func(rec RunRecord) {
			mu.Lock()
			seen = append(seen, rec)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	if recs[0].Error != "" || recs[0].Verdict != "accessible" {
		t.Fatalf("claimed run's record was not taken: %+v", recs[0])
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0].Error != "" {
		t.Fatalf("streamed records = %+v, want exactly the run's record", seen)
	}
}
