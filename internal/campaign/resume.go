package campaign

// DoneKey is the resume identity of a run: its plan coordinates with the
// impairment name canonicalized (the pristine link is "", matching the
// omitempty JSONL form), so files written before the impairment axis
// existed resume cleanly.
type DoneKey struct {
	Technique  string
	Scenario   string
	Impairment string
	Trial      int
}

// Key returns the spec's resume identity.
func (s RunSpec) Key() DoneKey {
	return DoneKey{s.Technique, s.Scenario, recordImpairment(s.Impairment), s.Trial}
}

// Key returns the record's resume identity.
func (r RunRecord) Key() DoneKey {
	return DoneKey{r.Technique, r.Scenario, recordImpairment(r.Impairment), r.Trial}
}

// DoneSet collects the coordinates of error-free records — the runs a
// resumed campaign must not repeat. Error records are deliberately left
// out: a run that timed out, panicked, or was abandoned at the drain grace
// gets a fresh chance on resume.
func DoneSet(recs []RunRecord) map[DoneKey]bool {
	done := make(map[DoneKey]bool, len(recs))
	for _, r := range recs {
		if r.Error == "" {
			done[r.Key()] = true
		}
	}
	return done
}

// Remaining filters the plan down to the specs not in done — the plan of a
// resumed campaign. Seeds are untouched (they derive from coordinates, not
// plan position), so resumed runs reproduce exactly what an uninterrupted
// campaign would have produced.
func (p *Plan) Remaining(done map[DoneKey]bool) *Plan {
	return p.Filter(func(s RunSpec) bool { return !done[s.Key()] })
}
