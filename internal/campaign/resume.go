package campaign

import (
	"fmt"
	"os"
)

// DoneKey is the resume identity of a run: its plan coordinates with the
// impairment and behavior names canonicalized (the pristine link and the
// faithful censor are "", matching the omitempty JSONL forms), so files
// written before either axis existed resume cleanly.
type DoneKey struct {
	Technique  string
	Scenario   string
	Impairment string
	Behavior   string
	Trial      int
}

// CellKey is the deterministic result identity of a run: its resume
// coordinates plus the lab seed the run executed with. Two runs with equal
// CellKeys compute byte-identical records (seed-determinism is the repo's
// core invariant), which is what makes CellKey usable as a result-cache key:
// the measured service dedupes requests on it, and cmd/campaign's resume
// logic is the same identity with the seed implied by the campaign seed.
type CellKey struct {
	DoneKey
	Seed int64
}

// CellKey returns the spec's result identity.
func (s RunSpec) CellKey() CellKey { return CellKey{s.Key(), s.Seed} }

// CellKey returns the record's result identity.
func (r RunRecord) CellKey() CellKey { return CellKey{r.Key(), r.Seed} }

// Key returns the spec's resume identity.
func (s RunSpec) Key() DoneKey {
	return DoneKey{s.Technique, s.Scenario, recordImpairment(s.Impairment), recordBehavior(s.Behavior), s.Trial}
}

// Key returns the record's resume identity.
func (r RunRecord) Key() DoneKey {
	return DoneKey{r.Technique, r.Scenario, recordImpairment(r.Impairment), recordBehavior(r.Behavior), r.Trial}
}

// DoneSet collects the coordinates of error-free records — the runs a
// resumed campaign must not repeat. Error records are deliberately left
// out: a run that timed out, panicked, or was abandoned at the drain grace
// gets a fresh chance on resume.
func DoneSet(recs []RunRecord) map[DoneKey]bool {
	done := make(map[DoneKey]bool, len(recs))
	for _, r := range recs {
		if r.Error == "" {
			done[r.Key()] = true
		}
	}
	return done
}

// Remaining filters the plan down to the specs not in done — the plan of a
// resumed campaign. Seeds are untouched (they derive from coordinates, not
// plan position), so resumed runs reproduce exactly what an uninterrupted
// campaign would have produced.
func (p *Plan) Remaining(done map[DoneKey]bool) *Plan {
	return p.Filter(func(s RunSpec) bool { return !done[s.Key()] })
}

// ReadDoneFile loads the resume identities of the error-free runs recorded
// in a JSONL file — the shared entry point of every consumer that resumes
// or dedupes against a records file (cmd/campaign -resume, cache warming).
// A missing file is an empty done set, not an error. truncateAt, when >= 0,
// is the byte offset of a corrupt trailing line (the wreckage of a campaign
// killed mid-write) that a caller intending to append must truncate away
// first; warn, when non-nil, is told about the skipped line.
func ReadDoneFile(path string, warn func(line int, err error)) (map[DoneKey]bool, int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[DoneKey]bool{}, -1, nil
	}
	if err != nil {
		return nil, -1, err
	}
	defer f.Close()
	recs, truncateAt, err := ReadJSONLResume(f, warn)
	if err != nil {
		return nil, -1, fmt.Errorf("campaign: %s: %w", path, err)
	}
	return DoneSet(recs), truncateAt, nil
}
