package campaign

import (
	"sort"
	"sync"
)

// CellProgress is the live completion state of one (scenario, impairment,
// technique) cell of the campaign matrix. Errors counts runs that executed
// and failed; Skipped counts runs an open circuit breaker shed without
// executing (their records carry BreakerOpenError), so a glance at /progress
// distinguishes a cell that is failing from one that has been tripped.
type CellProgress struct {
	Scenario   string `json:"scenario"`
	Impairment string `json:"impairment,omitempty"`
	Technique  string `json:"technique"`
	Planned    int    `json:"planned"`
	Done       int    `json:"done"`
	Correct    int    `json:"correct"`
	Errors     int    `json:"errors"`
	Skipped    int    `json:"skipped,omitempty"`
	// Breaker is the cell's live circuit-breaker state ("open",
	// "half-open"); empty when no breaker is attached or the breaker is
	// closed.
	Breaker string `json:"breaker,omitempty"`
}

// ProgressSnapshot is a point-in-time view of campaign completion, the JSON
// body served by the -metrics-addr /progress endpoint.
type ProgressSnapshot struct {
	Planned int            `json:"planned"`
	Done    int            `json:"done"`
	Errors  int            `json:"errors"`
	Skipped int            `json:"skipped,omitempty"`
	Cells   []CellProgress `json:"cells"`
}

// Progress tracks live campaign completion per cell. Record is safe to call
// from multiple workers; wire it into Options.OnRecord alongside the sink.
type Progress struct {
	mu       sync.Mutex
	cells    map[[3]string]*CellProgress
	total    int
	done     int
	errs     int
	skipped  int
	breakers *BreakerSet
}

// NewProgress enumerates the plan's cells so the snapshot shows planned
// totals from the start, not only cells that have completed runs.
func NewProgress(plan *Plan) *Progress {
	p := &Progress{cells: make(map[[3]string]*CellProgress)}
	if plan == nil {
		return p
	}
	for _, spec := range plan.Specs {
		p.total++
		imp := recordImpairment(spec.Impairment)
		k := [3]string{spec.Scenario, imp, spec.Technique}
		c, ok := p.cells[k]
		if !ok {
			c = &CellProgress{Scenario: spec.Scenario, Impairment: imp, Technique: spec.Technique}
			p.cells[k] = c
		}
		c.Planned++
	}
	return p
}

// Breakers attaches the campaign's breaker set so snapshots annotate each
// cell with its live breaker state. Share the same set with
// Options.Breakers; nil detaches.
func (p *Progress) Breakers(bs *BreakerSet) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.breakers = bs
}

// Record folds one completed run into the progress state.
func (p *Progress) Record(rec RunRecord) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	k := [3]string{rec.Scenario, rec.Impairment, rec.Technique}
	c, ok := p.cells[k]
	if !ok {
		c = &CellProgress{Scenario: rec.Scenario, Impairment: rec.Impairment, Technique: rec.Technique}
		p.cells[k] = c
	}
	c.Done++
	switch {
	case IsBreakerSkip(rec):
		c.Skipped++
		p.skipped++
	case rec.Error != "":
		c.Errors++
		p.errs++
	case rec.Correct:
		c.Correct++
	}
}

// Snapshot returns the current state with cells in sorted order.
func (p *Progress) Snapshot() ProgressSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{Planned: p.total, Done: p.done, Errors: p.errs, Skipped: p.skipped}
	for _, c := range p.cells {
		cell := *c
		if state := p.breakers.State(cell.Scenario, cell.Impairment, cell.Technique); state != BreakerClosed {
			cell.Breaker = state.String()
		}
		s.Cells = append(s.Cells, cell)
	}
	sort.Slice(s.Cells, func(i, j int) bool {
		a, b := s.Cells[i], s.Cells[j]
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		if a.Impairment != b.Impairment {
			return a.Impairment < b.Impairment
		}
		return a.Technique < b.Technique
	})
	return s
}
