package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"safemeasure/internal/telemetry"
)

// syncer is the optional durability hook of a sink's underlying writer —
// *os.File satisfies it; in-memory buffers simply skip the sync step.
type syncer interface{ Sync() error }

// sinkState is the durability machinery shared by JSONLSink and TraceSink:
// a locked bufio writer with an every-N-lines flush (plus Sync when the
// underlying writer supports it) and optional flush/sync counters.
type sinkState struct {
	mu         sync.Mutex
	w          *bufio.Writer
	raw        io.Writer
	count      int
	err        error
	syncEvery  int
	sinceFlush int
	flushes    *telemetry.Counter
	syncs      *telemetry.Counter
}

// wroteLocked accounts one written line and applies the SyncEvery policy.
func (s *sinkState) wroteLocked() {
	s.count++
	s.sinceFlush++
	if s.syncEvery > 0 && s.sinceFlush >= s.syncEvery {
		s.flushLocked(true)
	}
}

// flushLocked drains the bufio layer and, when sync is set, pushes the
// bytes to stable storage if the underlying writer can. The first error is
// retained, poisoning later writes exactly like a write error.
func (s *sinkState) flushLocked(sync bool) error {
	if s.err != nil {
		return s.err
	}
	if err := s.w.Flush(); err != nil {
		s.err = err
		return err
	}
	s.flushes.Inc()
	s.sinceFlush = 0
	if sync {
		if f, ok := s.raw.(syncer); ok {
			if err := f.Sync(); err != nil {
				s.err = err
				return err
			}
			s.syncs.Inc()
		}
	}
	return nil
}

// setSyncEvery installs the durability knob.
func (s *sinkState) setSyncEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncEvery = n
}

// instrument exposes flush/sync activity as labeled campaign counters.
func (s *sinkState) instrument(reg *telemetry.Registry, name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushes = reg.Counter(telemetry.Labels("campaign_sink_flush_total", "sink", name))
	s.syncs = reg.Counter(telemetry.Labels("campaign_sink_sync_total", "sink", name))
}

// JSONLSink streams run records to a writer, one JSON object per line, as
// they complete. Write is safe to call from multiple workers; lines are
// written whole, so a campaign interrupted mid-flight leaves a valid prefix
// that a later -resume can read back.
type JSONLSink struct {
	sinkState
}

// NewJSONLSink wraps a writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{}
	s.w, s.raw = bufio.NewWriter(w), w
	return s
}

// SyncEvery bounds how much a hard crash can lose: every n records the sink
// flushes its bufio layer and, when the underlying writer is a file, syncs
// it to stable storage — so at most n records ride in volatile buffers at
// any moment. n <= 0 restores the default (buffer until Flush).
func (s *JSONLSink) SyncEvery(n int) { s.setSyncEvery(n) }

// Instrument publishes the sink's flush/sync activity to reg as
// campaign_sink_flush_total{sink=name} and campaign_sink_sync_total{sink=name}.
func (s *JSONLSink) Instrument(reg *telemetry.Registry, name string) { s.instrument(reg, name) }

// Write emits one record. The first encoding or I/O error is retained and
// reported by Flush; later writes after an error are dropped.
func (s *JSONLSink) Write(rec RunRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		s.err = err
		return
	}
	raw = append(raw, '\n')
	if _, err := s.w.Write(raw); err != nil {
		s.err = err
		return
	}
	s.wroteLocked()
}

// Count returns how many records were written so far.
func (s *JSONLSink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Flush drains buffers (syncing to stable storage when SyncEvery is
// active) and returns the first error the sink hit.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked(s.syncEvery > 0)
}

// ReadJSONL parses records back from a JSONL stream — the aggregation and
// resume path for campaigns written earlier.
func ReadJSONL(r io.Reader) ([]RunRecord, error) {
	var out []RunRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec RunRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("campaign: jsonl line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadJSONLResume parses records like ReadJSONL, but tolerates a truncated
// or corrupt FINAL line — the normal wreckage of a campaign killed mid-write
// (the sink writes whole lines, so at most the last one can be partial). The
// bad line is skipped and warn, when non-nil, is told which line and why.
// Corruption anywhere before the last non-empty line still aborts: that
// indicates real file damage, not an interrupted append.
//
// truncateAt is the byte offset where the corrupt tail begins, or -1 when
// the stream is clean. A caller that intends to APPEND to the underlying
// file must truncate it there first, or the first appended record would be
// glued onto the partial line. Offsets assume LF line endings — what
// JSONLSink writes.
func ReadJSONLResume(r io.Reader, warn func(line int, err error)) (recs []RunRecord, truncateAt int64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	badLine := 0
	var off, badStart int64
	var badErr error
	for sc.Scan() {
		line++
		lineStart := off
		off += int64(len(sc.Bytes())) + 1
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		if badErr != nil {
			// The bad line has non-empty data after it, so it was not a
			// trailing partial write.
			return nil, -1, fmt.Errorf("campaign: jsonl line %d: %w", badLine, badErr)
		}
		var rec RunRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			badLine, badErr, badStart = line, err, lineStart
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, -1, err
	}
	if badErr != nil {
		if warn != nil {
			warn(badLine, badErr)
		}
		return recs, badStart, nil
	}
	return recs, -1, nil
}
