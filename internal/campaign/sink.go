package campaign

import (
	"fmt"
	"io"

	"safemeasure/internal/archival"
	"safemeasure/internal/telemetry"
)

// JSONLSink streams run records to a writer, one JSON object per line, as
// they complete. Write is safe to call from multiple workers; lines are
// written whole, so a campaign interrupted mid-flight leaves a valid prefix
// that a later -resume can read back. The buffering, durability, and
// torn-tail story all come from the shared archival.Sink.
type JSONLSink struct {
	archival.Sink
}

// NewJSONLSink wraps a writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{}
	s.Reset(w)
	return s
}

// SyncEvery bounds how much a hard crash can lose: every n records the sink
// flushes its bufio layer and, when the underlying writer is a file, syncs
// it to stable storage — so at most n records ride in volatile buffers at
// any moment. n <= 0 restores the default (buffer until Flush).
func (s *JSONLSink) SyncEvery(n int) { s.SetSyncEvery(n) }

// Instrument publishes the sink's flush/sync activity to reg as
// campaign_sink_flush_total{sink=name} and campaign_sink_sync_total{sink=name}.
func (s *JSONLSink) Instrument(reg *telemetry.Registry, name string) {
	s.InstrumentSink(reg, "campaign_sink_flush_total", "campaign_sink_sync_total", name)
}

// Write emits one record. The first encoding or I/O error is retained and
// reported by Flush; later writes after an error are dropped.
func (s *JSONLSink) Write(rec RunRecord) { s.EncodeLines(rec) }

// ReadJSONL parses records back from a JSONL stream — the aggregation and
// resume path for campaigns written earlier.
func ReadJSONL(r io.Reader) ([]RunRecord, error) {
	recs, _, err := archival.ReadAllJSONL[RunRecord](r, archival.TailStrict, nil)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return recs, nil
}

// ReadJSONLResume parses records like ReadJSONL, but tolerates a truncated
// or corrupt FINAL line — the normal wreckage of a campaign killed mid-write
// (the sink writes whole lines, so at most the last one can be partial). The
// bad line is skipped and warn, when non-nil, is told which line and why.
// Corruption anywhere before the last non-empty line still aborts: that
// indicates real file damage, not an interrupted append.
//
// truncateAt is the byte offset where the corrupt tail begins, or -1 when
// the stream is clean. A caller that intends to APPEND to the underlying
// file must truncate it there first, or the first appended record would be
// glued onto the partial line. Offsets assume LF line endings — what
// JSONLSink writes.
func ReadJSONLResume(r io.Reader, warn func(line int, err error)) (recs []RunRecord, truncateAt int64, err error) {
	recs, truncateAt, err = archival.ReadAllJSONL[RunRecord](r, archival.TailTolerate, warn)
	if err != nil {
		return nil, -1, fmt.Errorf("campaign: %w", err)
	}
	return recs, truncateAt, nil
}
