package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONLSink streams run records to a writer, one JSON object per line, as
// they complete. Write is safe to call from multiple workers; lines are
// written whole, so a campaign interrupted mid-flight leaves a valid prefix
// that a later -resume can read back.
type JSONLSink struct {
	mu    sync.Mutex
	w     *bufio.Writer
	count int
	err   error
}

// NewJSONLSink wraps a writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Write emits one record. The first encoding or I/O error is retained and
// reported by Flush; later writes after an error are dropped.
func (s *JSONLSink) Write(rec RunRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		s.err = err
		return
	}
	raw = append(raw, '\n')
	if _, err := s.w.Write(raw); err != nil {
		s.err = err
		return
	}
	s.count++
}

// Count returns how many records were written so far.
func (s *JSONLSink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Flush drains buffers and returns the first error the sink hit.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// ReadJSONL parses records back from a JSONL stream — the aggregation and
// resume path for campaigns written earlier.
func ReadJSONL(r io.Reader) ([]RunRecord, error) {
	var out []RunRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec RunRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("campaign: jsonl line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadJSONLResume parses records like ReadJSONL, but tolerates a truncated
// or corrupt FINAL line — the normal wreckage of a campaign killed mid-write
// (the sink writes whole lines, so at most the last one can be partial). The
// bad line is skipped and warn, when non-nil, is told which line and why.
// Corruption anywhere before the last non-empty line still aborts: that
// indicates real file damage, not an interrupted append.
//
// truncateAt is the byte offset where the corrupt tail begins, or -1 when
// the stream is clean. A caller that intends to APPEND to the underlying
// file must truncate it there first, or the first appended record would be
// glued onto the partial line. Offsets assume LF line endings — what
// JSONLSink writes.
func ReadJSONLResume(r io.Reader, warn func(line int, err error)) (recs []RunRecord, truncateAt int64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	badLine := 0
	var off, badStart int64
	var badErr error
	for sc.Scan() {
		line++
		lineStart := off
		off += int64(len(sc.Bytes())) + 1
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		if badErr != nil {
			// The bad line has non-empty data after it, so it was not a
			// trailing partial write.
			return nil, -1, fmt.Errorf("campaign: jsonl line %d: %w", badLine, badErr)
		}
		var rec RunRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			badLine, badErr, badStart = line, err, lineStart
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, -1, err
	}
	if badErr != nil {
		if warn != nil {
			warn(badLine, badErr)
		}
		return recs, badStart, nil
	}
	return recs, -1, nil
}
