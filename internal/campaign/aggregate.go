package campaign

import (
	"fmt"
	"sort"
	"strings"

	"safemeasure/internal/stats"
)

// Cell aggregates every run of one technique against one scenario.
type Cell struct {
	Scenario  string
	Technique string
	Stealth   bool

	Runs     int // completed runs (errors excluded)
	Errors   int
	Correct  int // verdict matched the scenario's ground truth
	Flagged  int // analyst flagged the measurer
	Alerted  int // runs where measurement traffic survived the MVR and tripped a rule
	Retained int // MVR kept metadata for the measurer (stage-1 visibility)

	Score     stats.Summary // analyst suspicion
	Entropy   stats.Summary // attribution entropy (bits)
	ElapsedMS stats.Summary // virtual per-run duration
}

// Accuracy is the fraction of completed runs with a correct verdict.
func (c *Cell) Accuracy() float64 { return frac(c.Correct, c.Runs) }

// FlagRate is the fraction of completed runs where the measurer was flagged.
func (c *Cell) FlagRate() float64 { return frac(c.Flagged, c.Runs) }

// EvasionRate is the fraction of completed runs where nothing incriminating
// survived the MVR: zero alerts in the measurer's dossier. Alerts only fire
// on traffic the MVR retained past its wholesale-discard stage, so an empty
// dossier means the measurement evaded MVR-fed analysis — the paper's
// evasion criterion. (Raw metadata retention is near-universal: even a
// benign resolver lookup leaves a flow record, so it is tracked in Retained
// but is not the evasion signal.)
func (c *Cell) EvasionRate() float64 { return frac(c.Runs-c.Alerted, c.Runs) }

// KindTotals aggregates one technique family (overt or stealth).
type KindTotals struct {
	Runs, Errors, Correct, Flagged int
}

// Accuracy is the family's correct fraction.
func (k KindTotals) Accuracy() float64 { return frac(k.Correct, k.Runs) }

// FlagRate is the family's flagged fraction.
func (k KindTotals) FlagRate() float64 { return frac(k.Flagged, k.Runs) }

// Summary is a whole campaign reduced to its reportable statistics.
type Summary struct {
	Cells          []Cell // sorted by (scenario, technique)
	Overt, Stealth KindTotals
	Runs, Errors   int
}

// Aggregate folds run records into per-cell and per-family statistics.
func Aggregate(recs []RunRecord) *Summary {
	cells := map[[2]string]*Cell{}
	sum := &Summary{}
	for _, r := range recs {
		key := [2]string{r.Scenario, r.Technique}
		c := cells[key]
		if c == nil {
			c = &Cell{Scenario: r.Scenario, Technique: r.Technique, Stealth: r.Stealth}
			cells[key] = c
		}
		sum.Runs++
		if r.Error != "" {
			c.Errors++
			sum.Errors++
			continue
		}
		kind := &sum.Overt
		if r.Stealth {
			kind = &sum.Stealth
		}
		c.Runs++
		kind.Runs++
		if r.Correct {
			c.Correct++
			kind.Correct++
		}
		if r.Flagged {
			c.Flagged++
			kind.Flagged++
		}
		if r.Alerts > 0 {
			c.Alerted++
		}
		if r.Retained {
			c.Retained++
		}
		c.Score.Add(r.Score)
		c.Entropy.Add(r.Entropy)
		c.ElapsedMS.Add(r.ElapsedMS)
	}
	for _, c := range cells {
		sum.Cells = append(sum.Cells, *c)
	}
	sort.Slice(sum.Cells, func(i, j int) bool {
		if sum.Cells[i].Scenario != sum.Cells[j].Scenario {
			return sum.Cells[i].Scenario < sum.Cells[j].Scenario
		}
		return sum.Cells[i].Technique < sum.Cells[j].Technique
	})
	return sum
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Render prints the campaign matrix and the overt-vs-stealth headline.
func (s *Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign summary — %d runs (%d errors)\n\n", s.Runs, s.Errors)
	t := stats.NewTable("scenario", "technique", "kind", "runs", "accuracy",
		"mvr-evasion", "flag-rate", "mean-score", "entropy-bits", "virt-ms")
	for _, c := range s.Cells {
		kind := "overt"
		if c.Stealth {
			kind = "stealth"
		}
		runs := fmt.Sprintf("%d", c.Runs)
		if c.Errors > 0 {
			runs = fmt.Sprintf("%d(+%derr)", c.Runs, c.Errors)
		}
		t.AddRow(c.Scenario, c.Technique, kind, runs, c.Accuracy(),
			c.EvasionRate(), c.FlagRate(), c.Score.Mean(), c.Entropy.Mean(),
			c.ElapsedMS.Mean())
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\naccuracy:  overt %.2f vs stealth %.2f (must be comparable)\n",
		s.Overt.Accuracy(), s.Stealth.Accuracy())
	fmt.Fprintf(&b, "flag rate: overt %.2f vs stealth %.2f (stealth must be lower)\n",
		s.Overt.FlagRate(), s.Stealth.FlagRate())
	return b.String()
}
