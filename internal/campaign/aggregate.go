package campaign

import (
	"fmt"
	"sort"
	"strings"

	"safemeasure/internal/stats"
)

// Cell aggregates every run of one technique against one scenario under one
// link impairment and one censor behavior. The impairment axis made the E11
// matrix three-dimensional; the behavior axis is its fourth dimension: the
// same (scenario, impairment, technique) cell appears once per adversarial
// censor preset swept.
type Cell struct {
	Scenario   string
	Impairment string // "" means the pristine link
	Behavior   string // "" means the faithful censor
	Technique  string
	Stealth    bool

	Runs         int // completed runs (errors excluded)
	Errors       int // failed runs, including breaker skips
	Skipped      int // runs an open circuit breaker shed (subset of Errors)
	Correct      int // verdict matched the scenario's ground truth
	Inconclusive int // tri-state middle: refused to call loss vs blocking
	Flagged      int // analyst flagged the measurer
	Alerted      int // runs where measurement traffic survived the MVR and tripped a rule
	Retained     int // MVR kept metadata for the measurer (stage-1 visibility)

	Score     stats.Summary // analyst suspicion
	Entropy   stats.Summary // attribution entropy (bits)
	Attempts  stats.Summary // probe attempts consumed per run (retry policy)
	ElapsedMS stats.Summary // virtual per-run duration
}

// Accuracy is the fraction of completed runs with a correct verdict.
func (c *Cell) Accuracy() float64 { return frac(c.Correct, c.Runs) }

// AccuracyCI is the Wilson 95% confidence interval on Accuracy — the
// verdict-confidence band a future adaptive planner can use to decide which
// cells still need trials and which are already resolved.
func (c *Cell) AccuracyCI() (lo, hi float64) { return stats.Wilson95(c.Correct, c.Runs) }

// InconclusiveRate is the fraction of completed runs the retry policy left
// unresolved rather than guessing.
func (c *Cell) InconclusiveRate() float64 { return frac(c.Inconclusive, c.Runs) }

// FlagRate is the fraction of completed runs where the measurer was flagged.
func (c *Cell) FlagRate() float64 { return frac(c.Flagged, c.Runs) }

// EvasionRate is the fraction of completed runs where nothing incriminating
// survived the MVR: zero alerts in the measurer's dossier. Alerts only fire
// on traffic the MVR retained past its wholesale-discard stage, so an empty
// dossier means the measurement evaded MVR-fed analysis — the paper's
// evasion criterion. (Raw metadata retention is near-universal: even a
// benign resolver lookup leaves a flow record, so it is tracked in Retained
// but is not the evasion signal.)
func (c *Cell) EvasionRate() float64 { return frac(c.Runs-c.Alerted, c.Runs) }

// KindTotals aggregates one technique family (overt or stealth).
type KindTotals struct {
	Runs, Errors, Correct, Flagged int
}

// Accuracy is the family's correct fraction.
func (k KindTotals) Accuracy() float64 { return frac(k.Correct, k.Runs) }

// FlagRate is the family's flagged fraction.
func (k KindTotals) FlagRate() float64 { return frac(k.Flagged, k.Runs) }

// ImpairmentTotals aggregates every run under one impairment preset — the
// marginal of the matrix along its new axis, answering "how much accuracy
// does a lossy link cost, and how much does the retry policy buy back".
type ImpairmentTotals struct {
	Impairment                                   string // "" means the pristine link
	Runs, Errors, Correct, Inconclusive, Alerted int
}

// Accuracy is the per-impairment correct fraction.
func (i ImpairmentTotals) Accuracy() float64 { return frac(i.Correct, i.Runs) }

// InconclusiveRate is the per-impairment unresolved fraction.
func (i ImpairmentTotals) InconclusiveRate() float64 { return frac(i.Inconclusive, i.Runs) }

// EvasionRate is the per-impairment evasion fraction (see Cell.EvasionRate).
func (i ImpairmentTotals) EvasionRate() float64 { return frac(i.Runs-i.Alerted, i.Runs) }

// BehaviorTotals aggregates every run under one censor-behavior preset —
// the marginal along the adversarial-censor axis, answering "how much does
// a misbehaving censor corrupt verdicts, and how much does corroboration
// buy back".
type BehaviorTotals struct {
	Behavior                                     string // "" means the faithful censor
	Runs, Errors, Correct, Inconclusive, Alerted int
}

// Accuracy is the per-behavior correct fraction.
func (b BehaviorTotals) Accuracy() float64 { return frac(b.Correct, b.Runs) }

// InconclusiveRate is the per-behavior unresolved fraction.
func (b BehaviorTotals) InconclusiveRate() float64 { return frac(b.Inconclusive, b.Runs) }

// EvasionRate is the per-behavior evasion fraction (see Cell.EvasionRate).
func (b BehaviorTotals) EvasionRate() float64 { return frac(b.Runs-b.Alerted, b.Runs) }

// Summary is a whole campaign reduced to its reportable statistics.
type Summary struct {
	Cells          []Cell             // sorted by (scenario, impairment, behavior, technique)
	Impairments    []ImpairmentTotals // sorted by name, pristine first
	Behaviors      []BehaviorTotals   // sorted by name, faithful first
	Overt, Stealth KindTotals
	Runs, Errors   int
	Skipped        int // breaker-skipped runs (subset of Errors)
}

// Aggregate folds run records into per-cell, per-impairment, and per-family
// statistics.
func Aggregate(recs []RunRecord) *Summary {
	cells := map[[4]string]*Cell{}
	impairs := map[string]*ImpairmentTotals{}
	behaviors := map[string]*BehaviorTotals{}
	sum := &Summary{}
	for _, r := range recs {
		key := [4]string{r.Scenario, r.Impairment, r.Behavior, r.Technique}
		c := cells[key]
		if c == nil {
			c = &Cell{Scenario: r.Scenario, Impairment: r.Impairment,
				Behavior: r.Behavior, Technique: r.Technique, Stealth: r.Stealth}
			cells[key] = c
		}
		im := impairs[r.Impairment]
		if im == nil {
			im = &ImpairmentTotals{Impairment: r.Impairment}
			impairs[r.Impairment] = im
		}
		bh := behaviors[r.Behavior]
		if bh == nil {
			bh = &BehaviorTotals{Behavior: r.Behavior}
			behaviors[r.Behavior] = bh
		}
		sum.Runs++
		if r.Error != "" {
			if IsBreakerSkip(r) {
				c.Skipped++
				sum.Skipped++
			}
			c.Errors++
			im.Errors++
			bh.Errors++
			sum.Errors++
			continue
		}
		kind := &sum.Overt
		if r.Stealth {
			kind = &sum.Stealth
		}
		c.Runs++
		im.Runs++
		bh.Runs++
		kind.Runs++
		if r.Correct {
			c.Correct++
			im.Correct++
			bh.Correct++
			kind.Correct++
		}
		if r.Verdict == "inconclusive" {
			c.Inconclusive++
			im.Inconclusive++
			bh.Inconclusive++
		}
		if r.Flagged {
			c.Flagged++
			kind.Flagged++
		}
		if r.Alerts > 0 {
			c.Alerted++
			im.Alerted++
			bh.Alerted++
		}
		if r.Retained {
			c.Retained++
		}
		c.Score.Add(r.Score)
		c.Entropy.Add(r.Entropy)
		c.Attempts.Add(float64(max(r.Attempts, 1)))
		c.ElapsedMS.Add(r.ElapsedMS)
	}
	for _, c := range cells {
		sum.Cells = append(sum.Cells, *c)
	}
	sort.Slice(sum.Cells, func(i, j int) bool {
		a, b := sum.Cells[i], sum.Cells[j]
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		if a.Impairment != b.Impairment {
			return a.Impairment < b.Impairment
		}
		if a.Behavior != b.Behavior {
			return a.Behavior < b.Behavior
		}
		return a.Technique < b.Technique
	})
	for _, im := range impairs {
		sum.Impairments = append(sum.Impairments, *im)
	}
	sort.Slice(sum.Impairments, func(i, j int) bool {
		return sum.Impairments[i].Impairment < sum.Impairments[j].Impairment
	})
	for _, bh := range behaviors {
		sum.Behaviors = append(sum.Behaviors, *bh)
	}
	sort.Slice(sum.Behaviors, func(i, j int) bool {
		return sum.Behaviors[i].Behavior < sum.Behaviors[j].Behavior
	})
	return sum
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// impairLabel renders the pristine link's empty name readably.
func impairLabel(name string) string {
	if name == "" {
		return "-"
	}
	return name
}

// behaviorLabel renders the faithful censor's empty name readably.
func behaviorLabel(name string) string {
	if name == "" {
		return "-"
	}
	return name
}

// Render prints the campaign matrix and the overt-vs-stealth headline.
func (s *Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign summary — %d runs (%d errors", s.Runs, s.Errors)
	if s.Skipped > 0 {
		fmt.Fprintf(&b, ", %d breaker-skipped", s.Skipped)
	}
	b.WriteString(")\n\n")
	t := stats.NewTable("scenario", "impair", "behav", "technique", "kind", "runs", "accuracy",
		"acc-95ci", "inconcl", "mvr-evasion", "flag-rate", "mean-score", "attempts", "virt-ms")
	for _, c := range s.Cells {
		kind := "overt"
		if c.Stealth {
			kind = "stealth"
		}
		runs := fmt.Sprintf("%d", c.Runs)
		if c.Errors > 0 {
			runs = fmt.Sprintf("%d(+%derr)", c.Runs, c.Errors)
		}
		lo, hi := c.AccuracyCI()
		t.AddRow(c.Scenario, impairLabel(c.Impairment), behaviorLabel(c.Behavior),
			c.Technique, kind, runs,
			c.Accuracy(), fmt.Sprintf("%.2f-%.2f", lo, hi),
			c.InconclusiveRate(), c.EvasionRate(), c.FlagRate(),
			c.Score.Mean(), c.Attempts.Mean(), c.ElapsedMS.Mean())
	}
	b.WriteString(t.String())
	if len(s.Impairments) > 1 {
		it := stats.NewTable("impairment", "runs", "accuracy", "inconcl", "mvr-evasion")
		for _, im := range s.Impairments {
			runs := fmt.Sprintf("%d", im.Runs)
			if im.Errors > 0 {
				runs = fmt.Sprintf("%d(+%derr)", im.Runs, im.Errors)
			}
			it.AddRow(impairLabel(im.Impairment), runs, im.Accuracy(),
				im.InconclusiveRate(), im.EvasionRate())
		}
		b.WriteString("\nper-impairment marginals:\n")
		b.WriteString(it.String())
	}
	if len(s.Behaviors) > 1 {
		bt := stats.NewTable("behavior", "runs", "accuracy", "inconcl", "mvr-evasion")
		for _, bh := range s.Behaviors {
			runs := fmt.Sprintf("%d", bh.Runs)
			if bh.Errors > 0 {
				runs = fmt.Sprintf("%d(+%derr)", bh.Runs, bh.Errors)
			}
			bt.AddRow(behaviorLabel(bh.Behavior), runs, bh.Accuracy(),
				bh.InconclusiveRate(), bh.EvasionRate())
		}
		b.WriteString("\nper-behavior marginals:\n")
		b.WriteString(bt.String())
	}
	fmt.Fprintf(&b, "\naccuracy:  overt %.2f vs stealth %.2f (must be comparable)\n",
		s.Overt.Accuracy(), s.Stealth.Accuracy())
	fmt.Fprintf(&b, "flag rate: overt %.2f vs stealth %.2f (stealth must be lower)\n",
		s.Overt.FlagRate(), s.Stealth.FlagRate())
	return b.String()
}
