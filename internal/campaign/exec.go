package campaign

import (
	"fmt"
	"sync"
	"time"

	"safemeasure/internal/core"
	"safemeasure/internal/lab"
	"safemeasure/internal/telemetry"
)

// artifactCache shares compiled lab artifacts (IDS rulesets, DNS zone, site
// catalog) across every run of a campaign — and across campaigns in the
// same process, which is what lets the measured service's persistent pool
// benefit too. Keyed by scenario name: a scenario fixes every
// compile-relevant config field, and an impairment only shapes the WAN
// uplink, never the compiled artifacts; lab.New still validates the
// artifacts against each run's exact config, so a mismatch surfaces as a
// descriptive per-run error instead of a silently wrong simulation.
var artifactCache sync.Map // scenario name -> *lab.Artifacts

func artifactsFor(sc lab.Scenario) (*lab.Artifacts, error) {
	if v, ok := artifactCache.Load(sc.Name); ok {
		return v.(*lab.Artifacts), nil
	}
	art, err := lab.NewArtifacts(sc.Config(0))
	if err != nil {
		return nil, err
	}
	// Two workers may race the first compile; LoadOrStore keeps exactly one
	// winner so every later run shares the same immutable value.
	v, _ := artifactCache.LoadOrStore(sc.Name, art)
	return v.(*lab.Artifacts), nil
}

// DefaultHorizon is how long population cover traffic runs alongside each
// measurement — the E11 evaluation value.
const DefaultHorizon = 2 * time.Second

// configured returns a fresh technique instance tuned with the E11
// evaluation parameters (bounded scan/flood sizes, cover counts), falling
// back to core defaults for anything unlisted.
func configured(name string) (core.Technique, bool) {
	switch name {
	case "syn-scan":
		return &core.SYNScan{Ports: 100}, true
	case "ddos":
		return &core.DDoS{Requests: 30}, true
	case "spoofed-dns":
		return &core.SpoofedDNS{Covers: 8}, true
	case "spoofed-syn":
		return &core.SpoofedSYN{Covers: 8}, true
	case "stateful-spoof":
		return &core.Stateful{Covers: 4}, true
	default:
		return core.ByName(name)
	}
}

// errorRecord fills a RunRecord for a run that produced no measurement.
func errorRecord(spec RunSpec, err error) RunRecord {
	rec := RunRecord{Scenario: spec.Scenario, Impairment: recordImpairment(spec.Impairment),
		Behavior: recordBehavior(spec.Behavior), Trial: spec.Trial, Error: err.Error()}
	rec.Technique = spec.Technique
	rec.Seed = spec.Seed
	return rec
}

// recordImpairment canonicalizes the impairment name for records: the
// pristine link renders as the empty string (omitted from JSONL).
func recordImpairment(name string) string {
	if name == lab.ImpairmentNone {
		return ""
	}
	return name
}

// recordBehavior canonicalizes the censor-behavior name for records: the
// faithful censor renders as the empty string (omitted from JSONL), so
// behavior-unaware files stay byte-identical and resume-compatible.
func recordBehavior(name string) string {
	if name == lab.BehaviorNone {
		return ""
	}
	return name
}

// DefaultTraceCap bounds each run's trace ring when ExecConfig leaves
// TraceCap zero; the ring keeps the newest events and counts drops.
const DefaultTraceCap = 8192

// ExecConfig parameterizes ExecuteInstrumented.
type ExecConfig struct {
	// Horizon is the population cover-traffic horizon; 0 means
	// DefaultHorizon.
	Horizon time.Duration
	// Metrics, when set, receives the run's hot-path counters (shared
	// across runs — every metric is atomic and commutative, so final
	// values are independent of worker count).
	Metrics *telemetry.Registry
	// Trace enables per-run packet-path tracing into a private ring.
	Trace bool
	// TraceCap bounds the ring; 0 means DefaultTraceCap.
	TraceCap int
	// Retry is the per-probe retry policy (virtual-time backoff + jitter);
	// the zero value means core.DefaultRetryPolicy(). Set
	// core.SingleShot() for the legacy one-probe behaviour.
	Retry core.RetryPolicy
}

// Execute runs one spec to completion in its own lab: build, start
// population cover traffic for horizon, run the technique, drain the
// simulator, and evaluate the measurer's risk. It never shares state with
// other runs, so any number of Executes may proceed concurrently.
func Execute(spec RunSpec, horizon time.Duration) RunRecord {
	rec, _ := ExecuteInstrumented(spec, ExecConfig{Horizon: horizon})
	return rec
}

// ExecuteInstrumented is Execute with telemetry: hot-path metrics flow into
// cfg.Metrics and, when cfg.Trace is set, the run's packet-path events are
// returned in emission order. Each run gets its own ring, so traces are
// per-run deterministic regardless of what other workers are doing.
func ExecuteInstrumented(spec RunSpec, cfg ExecConfig) (RunRecord, []telemetry.Event) {
	tech, ok := configured(spec.Technique)
	if !ok {
		return errorRecord(spec, fmt.Errorf("unknown technique %q", spec.Technique)), nil
	}
	sc, ok := lab.ScenarioByName(spec.Scenario)
	if !ok {
		return errorRecord(spec, fmt.Errorf("unknown scenario %q", spec.Scenario)), nil
	}
	imp, ok := lab.ImpairmentByName(spec.Impairment)
	if !ok {
		return errorRecord(spec, fmt.Errorf("unknown impairment %q", spec.Impairment)), nil
	}
	bhv, ok := lab.BehaviorByName(spec.Behavior)
	if !ok {
		return errorRecord(spec, fmt.Errorf("unknown censor behavior %q", spec.Behavior)), nil
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	labCfg := sc.Config(spec.Seed)
	labCfg.Impair = imp.Impair
	labCfg.Behavior = bhv.Behavior
	labCfg.Telemetry = cfg.Metrics
	if art, err := artifactsFor(sc); err == nil {
		labCfg.Artifacts = art
	} // on error, lab.New recompiles and reports the same failure per run
	var ring *telemetry.Ring
	if cfg.Trace {
		capacity := cfg.TraceCap
		if capacity <= 0 {
			capacity = DefaultTraceCap
		}
		ring = telemetry.NewRing(capacity)
		labCfg.Trace = telemetry.NewTracer(ring)
	}
	events := func() []telemetry.Event {
		if ring == nil {
			return nil
		}
		return ring.Events()
	}
	l, err := lab.New(labCfg)
	if err != nil {
		return errorRecord(spec, fmt.Errorf("lab: %w", err)), events()
	}
	l.StartPopulation(horizon)

	tgt := core.Target{Domain: sc.Domain, Path: sc.Path, Port: sc.Port, Addr: sc.Addr}
	var res *core.Result
	core.RunWithRetry(l, tech, tgt, cfg.Retry, func(r *core.Result) { res = r })
	l.Run()
	if res == nil {
		return errorRecord(spec, fmt.Errorf("%s never completed", spec.Technique)), events()
	}

	risk := core.EvaluateRisk(l, lab.ClientAddr)
	rec := RunRecord{
		Scenario:    spec.Scenario,
		Impairment:  recordImpairment(spec.Impairment),
		Behavior:    recordBehavior(spec.Behavior),
		Trial:       spec.Trial,
		Record:      core.NewRecord(res, risk, spec.Seed, l.Sim.Now()),
		GroundTruth: sc.Censored,
	}
	rec.Correct = (res.Verdict == core.VerdictCensored) == sc.Censored &&
		res.Verdict != core.VerdictInconclusive
	return rec, events()
}
