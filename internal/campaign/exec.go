package campaign

import (
	"fmt"
	"time"

	"safemeasure/internal/core"
	"safemeasure/internal/lab"
)

// DefaultHorizon is how long population cover traffic runs alongside each
// measurement — the E11 evaluation value.
const DefaultHorizon = 2 * time.Second

// configured returns a fresh technique instance tuned with the E11
// evaluation parameters (bounded scan/flood sizes, cover counts), falling
// back to core defaults for anything unlisted.
func configured(name string) (core.Technique, bool) {
	switch name {
	case "syn-scan":
		return &core.SYNScan{Ports: 100}, true
	case "ddos":
		return &core.DDoS{Requests: 30}, true
	case "spoofed-dns":
		return &core.SpoofedDNS{Covers: 8}, true
	case "spoofed-syn":
		return &core.SpoofedSYN{Covers: 8}, true
	case "stateful-spoof":
		return &core.Stateful{Covers: 4}, true
	default:
		return core.ByName(name)
	}
}

// errorRecord fills a RunRecord for a run that produced no measurement.
func errorRecord(spec RunSpec, err error) RunRecord {
	rec := RunRecord{Scenario: spec.Scenario, Trial: spec.Trial, Error: err.Error()}
	rec.Technique = spec.Technique
	rec.Seed = spec.Seed
	return rec
}

// Execute runs one spec to completion in its own lab: build, start
// population cover traffic for horizon, run the technique, drain the
// simulator, and evaluate the measurer's risk. It never shares state with
// other runs, so any number of Executes may proceed concurrently.
func Execute(spec RunSpec, horizon time.Duration) RunRecord {
	tech, ok := configured(spec.Technique)
	if !ok {
		return errorRecord(spec, fmt.Errorf("unknown technique %q", spec.Technique))
	}
	sc, ok := lab.ScenarioByName(spec.Scenario)
	if !ok {
		return errorRecord(spec, fmt.Errorf("unknown scenario %q", spec.Scenario))
	}
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	l, err := lab.New(sc.Config(spec.Seed))
	if err != nil {
		return errorRecord(spec, fmt.Errorf("lab: %w", err))
	}
	l.StartPopulation(horizon)

	tgt := core.Target{Domain: sc.Domain, Path: sc.Path, Port: sc.Port, Addr: sc.Addr}
	var res *core.Result
	tech.Run(l, tgt, func(r *core.Result) { res = r })
	l.Run()
	if res == nil {
		return errorRecord(spec, fmt.Errorf("%s never completed", spec.Technique))
	}

	risk := core.EvaluateRisk(l, lab.ClientAddr)
	rec := RunRecord{
		Scenario:    spec.Scenario,
		Trial:       spec.Trial,
		Record:      core.NewRecord(res, risk, spec.Seed, l.Sim.Now()),
		GroundTruth: sc.Censored,
	}
	rec.Correct = (res.Verdict == core.VerdictCensored) == sc.Censored &&
		res.Verdict != core.VerdictInconclusive
	return rec
}
