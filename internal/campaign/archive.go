package campaign

import (
	"fmt"
	"sort"

	"safemeasure/internal/archival"
	"safemeasure/internal/telemetry"
)

// archiveRunID derives the archival parent-run ID from a record's cell
// identity — the same coordinates as CellKey, so two runs with equal cell
// keys flatten to rows with equal run IDs.
func archiveRunID(technique, scenario, impairment, behavior string, trial int, seed int64) uint64 {
	return archival.RunID(technique, scenario, impairment, behavior, trial, seed)
}

// obsBase stamps the shared identity columns of one run's rows.
func obsBase(technique, scenario, impairment, behavior string, trial int, seed int64) archival.Observation {
	return archival.Observation{
		Run:        archiveRunID(technique, scenario, impairment, behavior, trial, seed),
		Technique:  technique,
		Scenario:   scenario,
		Impairment: impairment,
		Behavior:   behavior,
		Trial:      trial,
		Seed:       seed,
	}
}

// FlattenRecord decomposes one run record into flat archival observations —
// one self-describing row per sub-measurement, every row carrying the run's
// full cell identity and a content-derived unique ID. Zero-valued
// sub-measurements emit no row (an absent row reconstructs as the zero
// value), so error records flatten to just their identity and error rows.
// The inverse is UnflattenRecord; the round trip is exact.
func FlattenRecord(rec RunRecord) []archival.Observation {
	base := obsBase(rec.Technique, rec.Scenario, rec.Impairment, rec.Behavior, rec.Trial, rec.Seed)
	obs := make([]archival.Observation, 0, 8+len(rec.CoverAddresses)+len(rec.Evidence))
	add := func(o archival.Observation) {
		o.SetID()
		obs = append(obs, o)
	}
	row := func(typ string) archival.Observation {
		o := base
		o.Type = typ
		return o
	}
	if rec.Verdict != "" || rec.Mechanism != "" || rec.Target != "" ||
		rec.ElapsedMS != 0 || rec.Correct || rec.Confidence != 0 {
		o := row(archival.TypeVerdict)
		o.Name = rec.Verdict
		o.Detail = rec.Mechanism
		o.Dst = rec.Target
		o.Value = rec.ElapsedMS
		o.Flag = rec.Correct
		o.Confidence = rec.Confidence
		add(o)
	}
	if rec.GroundTruth {
		o := row(archival.TypeTruth)
		o.Flag = true
		add(o)
	}
	if rec.Stealth {
		o := row(archival.TypeStealth)
		o.Flag = true
		add(o)
	}
	if rec.Attempts != 0 {
		o := row(archival.TypeAttempt)
		o.Count = int64(rec.Attempts)
		add(o)
	}
	if rec.Probes != 0 {
		o := row(archival.TypeProbe)
		o.Count = int64(rec.Probes)
		add(o)
	}
	if rec.Cover != 0 {
		o := row(archival.TypeCover)
		o.Count = int64(rec.Cover)
		add(o)
	}
	for i, addr := range rec.CoverAddresses {
		o := row(archival.TypeCoverAddr)
		o.Seq = i
		o.Name = addr
		add(o)
	}
	for i, ev := range rec.Evidence {
		o := row(archival.TypeEvidence)
		o.Seq = i
		o.Detail = ev
		add(o)
	}
	if rec.Score != 0 || rec.Alerts != 0 || rec.Flagged {
		o := row(archival.TypeRisk)
		o.Value = rec.Score
		o.Count = int64(rec.Alerts)
		o.Flag = rec.Flagged
		add(o)
	}
	if rec.Entropy != 0 || rec.Implicated != 0 || rec.Retained {
		o := row(archival.TypeAttribution)
		o.Value = rec.Entropy
		o.Count = int64(rec.Implicated)
		o.Flag = rec.Retained
		add(o)
	}
	if rec.Error != "" {
		o := row(archival.TypeError)
		o.Detail = rec.Error
		add(o)
	}
	return obs
}

// ObservationSpec reconstructs the run spec identity an observation row
// carries — every row repeats its run's full cell identity, so any single
// row is enough. The returned spec has no plan Index; its CellKey (and
// therefore its derived run ID) matches the row's Run column. This is the
// shared inverse the measured service's journal replay and archive warm
// start both lean on instead of re-deriving identities ad hoc.
func ObservationSpec(o archival.Observation) RunSpec {
	return RunSpec{
		Technique:  o.Technique,
		Scenario:   o.Scenario,
		Impairment: o.Impairment,
		Behavior:   o.Behavior,
		Trial:      o.Trial,
		Seed:       o.Seed,
	}
}

// FlattenTrace decomposes one run's packet-path trace into observation rows
// (one per event, ordered by Seq), sharing the run ID of the record rows so
// traces join records by cell identity.
func FlattenTrace(rt RunTrace) []archival.Observation {
	base := obsBase(rt.Technique, rt.Scenario, rt.Impairment, rt.Behavior, rt.Trial, rt.Seed)
	obs := make([]archival.Observation, 0, len(rt.Events))
	for i, ev := range rt.Events {
		o := base
		o.Type = archival.TypeTrace
		o.Seq = i
		o.T = ev.T
		o.Name = ev.Kind
		o.Src = ev.Src
		o.Dst = ev.Dst
		o.Detail = ev.Detail
		o.SetID()
		obs = append(obs, o)
	}
	return obs
}

// UnflattenRecord folds one run's observation rows (any order, trace rows
// ignored) back into the run record FlattenRecord decomposed. All rows must
// share one run identity; a row from another run is an error.
func UnflattenRecord(obs []archival.Observation) (RunRecord, error) {
	if len(obs) == 0 {
		return RunRecord{}, fmt.Errorf("campaign: unflatten: no observations")
	}
	var rec RunRecord
	first := obs[0]
	rec.Technique = first.Technique
	rec.Scenario = first.Scenario
	rec.Impairment = first.Impairment
	rec.Behavior = first.Behavior
	rec.Trial = first.Trial
	rec.Seed = first.Seed
	coverAddrs := map[int]string{}
	evidence := map[int]string{}
	for _, o := range obs {
		if o.Run != first.Run {
			return RunRecord{}, fmt.Errorf("campaign: unflatten: rows from different runs (%d vs %d)",
				o.Run, first.Run)
		}
		switch o.Type {
		case archival.TypeVerdict:
			rec.Verdict = o.Name
			rec.Mechanism = o.Detail
			rec.Target = o.Dst
			rec.ElapsedMS = o.Value
			rec.Correct = o.Flag
			rec.Confidence = o.Confidence
		case archival.TypeTruth:
			rec.GroundTruth = o.Flag
		case archival.TypeStealth:
			rec.Stealth = o.Flag
		case archival.TypeAttempt:
			rec.Attempts = int(o.Count)
		case archival.TypeProbe:
			rec.Probes = int(o.Count)
		case archival.TypeCover:
			rec.Cover = int(o.Count)
		case archival.TypeCoverAddr:
			coverAddrs[o.Seq] = o.Name
		case archival.TypeEvidence:
			evidence[o.Seq] = o.Detail
		case archival.TypeRisk:
			rec.Score = o.Value
			rec.Alerts = int(o.Count)
			rec.Flagged = o.Flag
		case archival.TypeAttribution:
			rec.Entropy = o.Value
			rec.Implicated = int(o.Count)
			rec.Retained = o.Flag
		case archival.TypeError:
			rec.Error = o.Detail
		case archival.TypeTrace, archival.TypePacket:
			// Trace and packet rows ride alongside record rows in archives;
			// they reconstruct through their own paths, not the record.
		default:
			return RunRecord{}, fmt.Errorf("campaign: unflatten: unknown observation type %q", o.Type)
		}
	}
	rec.CoverAddresses = seqSlice(coverAddrs)
	rec.Evidence = seqSlice(evidence)
	return rec, nil
}

// seqSlice orders Seq-keyed strings back into a slice (nil when empty).
func seqSlice(m map[int]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// ObservationSink adapts an archival writer to the campaign callbacks: each
// completed run's record (and, when tracing is on, its trace) is flattened
// into observation rows and written as one contiguous batch, so archives
// stay run-contiguous — the property the streaming analyzers group by.
// Record and Trace are safe to call from multiple workers (the underlying
// archival.Sink serializes batches).
type ObservationSink struct {
	w archival.Writer
}

// NewObservationSink wraps an archival writer.
func NewObservationSink(w archival.Writer) *ObservationSink {
	return &ObservationSink{w: w}
}

// Record flattens and archives one run record (an Options.OnRecord hook).
func (s *ObservationSink) Record(rec RunRecord) {
	s.w.WriteObservations(FlattenRecord(rec))
}

// Trace flattens and archives one run's trace (an Options.OnTrace hook).
func (s *ObservationSink) Trace(rt RunTrace) {
	s.w.WriteObservations(FlattenTrace(rt))
}

// Count reports how many observation rows were written.
func (s *ObservationSink) Count() int { return s.w.Count() }

// Flush drains the underlying writer.
func (s *ObservationSink) Flush() error { return s.w.Flush() }

// SyncEvery forwards the durability knob to the underlying writer.
func (s *ObservationSink) SyncEvery(n int) { s.w.SetSyncEvery(n) }

// Instrument publishes the underlying sink's flush/sync activity when the
// writer supports it (both archival writers do).
func (s *ObservationSink) Instrument(reg *telemetry.Registry, name string) {
	type instrumenter interface {
		InstrumentSink(reg *telemetry.Registry, flushMetric, syncMetric, name string)
	}
	if in, ok := s.w.(instrumenter); ok {
		in.InstrumentSink(reg, "campaign_sink_flush_total", "campaign_sink_sync_total", name)
	}
}
