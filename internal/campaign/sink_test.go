package campaign

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func fakeRecord(scenario, technique string, trial int) RunRecord {
	rec := RunRecord{Scenario: scenario, Trial: trial}
	rec.Technique = technique
	rec.Seed = int64(trial)
	rec.Verdict = "censored"
	rec.Correct = true
	return rec
}

func TestJSONLSinkRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	want := []RunRecord{
		fakeRecord("dns-poison", "spam", 0),
		fakeRecord("dns-poison", "spam", 1),
		fakeRecord("open", "overt-dns", 0),
	}
	for _, rec := range want {
		sink.Write(rec)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Count() != len(want) {
		t.Fatalf("count = %d, want %d", sink.Count(), len(want))
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read back %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestJSONLSinkConcurrentWrites(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sink.Write(fakeRecord("open", "spam", i))
		}(i)
	}
	wg.Wait()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("concurrent writes interleaved: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	seen := map[int]bool{}
	for _, r := range recs {
		if seen[r.Trial] {
			t.Fatalf("trial %d written twice", r.Trial)
		}
		seen[r.Trial] = true
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"scenario\":\"open\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse failure", err)
	}
	recs, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty stream: %v, %v", recs, err)
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	f.after -= len(p)
	return len(p), nil
}

func TestJSONLSinkRetainsFirstError(t *testing.T) {
	sink := NewJSONLSink(&failWriter{after: 1}) // room for less than one line
	for i := 0; i < 100; i++ {
		sink.Write(fakeRecord("open", "spam", i))
	}
	if err := sink.Flush(); err == nil {
		t.Fatal("sink swallowed the write error")
	}
}
