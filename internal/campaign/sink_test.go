package campaign

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"safemeasure/internal/telemetry"
)

func fakeRecord(scenario, technique string, trial int) RunRecord {
	rec := RunRecord{Scenario: scenario, Trial: trial}
	rec.Technique = technique
	rec.Seed = int64(trial)
	rec.Verdict = "censored"
	rec.Correct = true
	return rec
}

func TestJSONLSinkRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	want := []RunRecord{
		fakeRecord("dns-poison", "spam", 0),
		fakeRecord("dns-poison", "spam", 1),
		fakeRecord("open", "overt-dns", 0),
	}
	for _, rec := range want {
		sink.Write(rec)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Count() != len(want) {
		t.Fatalf("count = %d, want %d", sink.Count(), len(want))
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read back %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestJSONLSinkConcurrentWrites(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sink.Write(fakeRecord("open", "spam", i))
		}(i)
	}
	wg.Wait()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("concurrent writes interleaved: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	seen := map[int]bool{}
	for _, r := range recs {
		if seen[r.Trial] {
			t.Fatalf("trial %d written twice", r.Trial)
		}
		seen[r.Trial] = true
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"scenario\":\"open\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse failure", err)
	}
	recs, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty stream: %v, %v", recs, err)
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	f.after -= len(p)
	return len(p), nil
}

func TestJSONLSinkRetainsFirstError(t *testing.T) {
	sink := NewJSONLSink(&failWriter{after: 1}) // room for less than one line
	for i := 0; i < 100; i++ {
		sink.Write(fakeRecord("open", "spam", i))
	}
	if err := sink.Flush(); err == nil {
		t.Fatal("sink swallowed the write error")
	}
}

func TestReadJSONLResumeSkipsTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.Write(fakeRecord("dns-poison", "spam", 0))
	sink.Write(fakeRecord("dns-poison", "spam", 1))
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	// A campaign killed mid-write leaves a partial final line.
	goodLen := int64(buf.Len())
	buf.WriteString(`{"scenario":"dns-poi`)

	var warnedLine int
	recs, truncateAt, err := ReadJSONLResume(&buf, func(line int, err error) { warnedLine = line })
	if err != nil {
		t.Fatalf("tolerant read failed: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if warnedLine != 3 {
		t.Fatalf("warned about line %d, want 3", warnedLine)
	}
	if truncateAt != goodLen {
		t.Fatalf("truncateAt = %d, want %d (end of last good line)", truncateAt, goodLen)
	}
	// The strict reader still rejects the same input.
	strict := strings.NewReader(`{"scenario":"dns-poi`)
	if _, err := ReadJSONL(strict); err == nil {
		t.Fatal("strict ReadJSONL accepted a truncated line")
	}
}

func TestReadJSONLResumeRejectsMidFileCorruption(t *testing.T) {
	input := `{"scenario":"open","trial":0,"technique":"overt-dns","correct":true}
not json at all
{"scenario":"open","trial":1,"technique":"overt-dns","correct":true}
`
	warned := false
	_, _, err := ReadJSONLResume(strings.NewReader(input), func(int, error) { warned = true })
	if err == nil {
		t.Fatal("mid-file corruption accepted")
	}
	if warned {
		t.Fatal("warn called for a hard error")
	}
}

func TestReadJSONLResumeCleanFile(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	want := []RunRecord{fakeRecord("open", "overt-dns", 0), fakeRecord("open", "overt-tcp", 0)}
	for _, rec := range want {
		sink.Write(rec)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, truncateAt, err := ReadJSONLResume(&buf, func(line int, err error) {
		t.Fatalf("unexpected warning for clean file: line %d: %v", line, err)
	})
	if err != nil {
		t.Fatal(err)
	}
	if truncateAt != -1 {
		t.Fatalf("truncateAt = %d for a clean file, want -1", truncateAt)
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", recs, want)
	}
}

// syncWriter records flush visibility and Sync calls — a stand-in for
// *os.File in durability tests.
type syncWriter struct {
	buf   bytes.Buffer
	syncs int
}

func (w *syncWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }
func (w *syncWriter) Sync() error                 { w.syncs++; return nil }

func TestJSONLSinkSyncEveryBoundsLoss(t *testing.T) {
	w := &syncWriter{}
	sink := NewJSONLSink(w)
	sink.SyncEvery(2)
	reg := telemetry.NewRegistry()
	sink.Instrument(reg, "records")

	for i := 0; i < 5; i++ {
		sink.Write(fakeRecord("open", "spam", i))
	}
	// Without calling Flush, 4 of the 5 records (two SyncEvery batches)
	// must already be durable: visible in the writer AND synced.
	recs, err := ReadJSONL(bytes.NewReader(w.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("pre-Flush durable records = %d, want 4 (SyncEvery 2 after 5 writes)", len(recs))
	}
	if w.syncs != 2 {
		t.Fatalf("syncs = %d, want 2", w.syncs)
	}
	if got := reg.Counter(telemetry.Labels("campaign_sink_sync_total", "sink", "records")).Value(); got != 2 {
		t.Fatalf("campaign_sink_sync_total = %d, want 2", got)
	}
	// Final Flush drains the straggler and syncs once more.
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err = ReadJSONL(bytes.NewReader(w.buf.Bytes()))
	if err != nil || len(recs) != 5 {
		t.Fatalf("post-Flush records = %d (%v), want 5", len(recs), err)
	}
	if w.syncs != 3 {
		t.Fatalf("syncs after Flush = %d, want 3", w.syncs)
	}
	if got := reg.Counter(telemetry.Labels("campaign_sink_flush_total", "sink", "records")).Value(); got != 3 {
		t.Fatalf("campaign_sink_flush_total = %d, want 3", got)
	}
}

func TestJSONLSinkSyncEveryDisabledBuffers(t *testing.T) {
	w := &syncWriter{}
	sink := NewJSONLSink(w)
	sink.Write(fakeRecord("open", "spam", 0))
	if w.buf.Len() != 0 {
		t.Fatal("record escaped the bufio layer without SyncEvery or Flush")
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.syncs != 0 {
		t.Fatalf("plain Flush synced %d times; sync is the SyncEvery contract", w.syncs)
	}
}

func TestTraceSinkSyncEvery(t *testing.T) {
	w := &syncWriter{}
	sink := NewTraceSink(w)
	sink.SyncEvery(3)
	events := []telemetry.Event{{T: 1, Kind: "probe"}, {T: 2, Kind: "alert"}}
	sink.Write(RunTrace{Scenario: "open", Technique: "spam", Trial: 0, Events: events})
	if w.buf.Len() != 0 {
		t.Fatalf("2 event lines flushed before the 3-line threshold")
	}
	sink.Write(RunTrace{Scenario: "open", Technique: "spam", Trial: 1, Events: events})
	// The run is written as one batch, so when the 3-line threshold fires the
	// whole batch is already in the bufio layer and all 4 lines become
	// durable — the flush can only land at or past the threshold, never short
	// of it.
	if lines := strings.Count(w.buf.String(), "\n"); lines != 4 || w.syncs != 1 {
		t.Fatalf("after 4 events: %d durable lines, %d syncs; want 4 lines, 1 sync", lines, w.syncs)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Count() != 4 {
		t.Fatalf("count = %d, want 4", sink.Count())
	}
}
