package campaign

import (
	"encoding/json"
	"testing"

	"safemeasure/internal/lab"
)

// TestBehaviorCampaignDeterministicAcrossWorkerCounts is the satellite
// acceptance check for the censor-behavior axis: a campaign sweeping every
// adversarial behavior preset produces byte-identical sorted records AND
// byte-identical aggregates for workers 1 and 8 — all behavior state
// (sticky flow decisions, shaper clocks, injector budgets) lives inside each
// run's lab and derives from the run seed alone.
func TestBehaviorCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	var outputs, aggregates []string
	for _, workers := range []int{1, 8} {
		p, err := NewPlan(PlanConfig{
			Scenarios: []string{"keyword-rst"},
			Behaviors: []string{"all"},
			Trials:    1,
			Seed:      17,
		})
		if err != nil {
			t.Fatal(err)
		}
		recs, err := Run(p, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, rec := range recs {
			if rec.Error != "" {
				t.Fatalf("workers=%d: behavior run failed: %+v", workers, rec)
			}
			seen[rec.Behavior] = true
		}
		// Every preset must appear in the records, with the faithful censor
		// canonicalized to the empty string.
		for _, name := range lab.BehaviorNames() {
			want := name
			if name == lab.BehaviorNone {
				want = ""
			}
			if !seen[want] {
				t.Fatalf("workers=%d: behavior %q missing from records (saw %v)", workers, name, seen)
			}
		}
		outputs = append(outputs, sortedJSONL(t, recs))
		agg, err := json.Marshal(Aggregate(recs))
		if err != nil {
			t.Fatal(err)
		}
		aggregates = append(aggregates, string(agg))
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("worker count changed behavior-swept records:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			outputs[0], outputs[1])
	}
	if aggregates[0] != aggregates[1] {
		t.Fatalf("worker count changed behavior-swept aggregates:\n%s\nvs\n%s", aggregates[0], aggregates[1])
	}
}

// TestThrottleDistinguishableFromLossInAggregates pins the campaign-level
// form of the throttle claim: in one sweep holding the scenario fixed, the
// throttle-behavior cell classifies the target as censored (accuracy 1) while
// the lossy20 faithful-censor cell of the *open* scenario never reports
// censorship — the two confounds land in different aggregate columns rather
// than blurring together.
func TestThrottleDistinguishableFromLossInAggregates(t *testing.T) {
	p, err := NewPlan(PlanConfig{
		Techniques:  []string{"overt-http"},
		Scenarios:   []string{"keyword-rst", "open"},
		Impairments: []string{"none", "lossy20"},
		Behaviors:   []string{"none", "throttle"},
		Trials:      2,
		Seed:        23,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Run(p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sum := Aggregate(recs)
	var throttleCell, lossyOpenCell *Cell
	for i, c := range sum.Cells {
		if c.Scenario == "keyword-rst" && c.Behavior == "throttle" && c.Impairment == "" {
			throttleCell = &sum.Cells[i]
		}
		if c.Scenario == "open" && c.Behavior == "" && c.Impairment == "lossy20" {
			lossyOpenCell = &sum.Cells[i]
		}
	}
	if throttleCell == nil || lossyOpenCell == nil {
		t.Fatalf("sweep missing expected cells: %+v", sum.Cells)
	}
	if throttleCell.Correct != throttleCell.Runs {
		t.Fatalf("throttle cell not fully correct: %+v", *throttleCell)
	}
	for _, rec := range recs {
		if rec.Scenario == "keyword-rst" && rec.Behavior == "throttle" && rec.Impairment == "" {
			if rec.Verdict != "censored" || rec.Mechanism != "throttle" {
				t.Fatalf("throttle run not classified as throttling: %+v", rec)
			}
		}
		if rec.Scenario == "open" && rec.Behavior == "" && rec.Impairment == "lossy20" {
			if rec.Verdict == "censored" {
				t.Fatalf("lossy open run misclassified as censored: %+v", rec)
			}
		}
	}
}
