package campaign

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"safemeasure/internal/telemetry"
)

// stubExecutor returns a fast, claiming executor whose records carry the
// spec coordinates — enough for submitters to verify they got their own
// result back.
func stubExecutor() Executor {
	return func(spec RunSpec, _ time.Duration, claim func() bool) RunRecord {
		rec := RunRecord{Scenario: spec.Scenario, Impairment: recordImpairment(spec.Impairment),
			Trial: spec.Trial, Correct: true}
		rec.Technique = spec.Technique
		rec.Seed = spec.Seed
		rec.Verdict = "censored"
		claim()
		return rec
	}
}

func poolSpec(i int) RunSpec {
	return RunSpec{Index: i, Technique: "overt-dns", Scenario: "dns-poison",
		Trial: i, Seed: int64(1000 + i)}
}

func TestPoolExecutesConcurrentSubmitters(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPool(PoolConfig{Workers: 4, Metrics: reg, Execute: stubExecutor()})
	const n = 32
	recs := make([]RunRecord, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, err := p.Do(context.Background(), poolSpec(i))
			if err != nil {
				t.Errorf("Do(%d): %v", i, err)
				return
			}
			recs[i] = rec
		}(i)
	}
	wg.Wait()
	for i, rec := range recs {
		if rec.Trial != i || rec.Seed != int64(1000+i) || rec.Error != "" {
			t.Fatalf("submitter %d got someone else's record: %+v", i, rec)
		}
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("clean shutdown returned %v", err)
	}
	if got := reg.Counter(telemetry.Labels("campaign_runs_total", "family", "overt")).Value(); got != n {
		t.Fatalf("campaign_runs_total{family=overt} = %d, want %d", got, n)
	}
}

func TestPoolRejectsAfterShutdown(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1, Execute: stubExecutor()})
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Do(context.Background(), poolSpec(0)); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Do after Shutdown = %v, want ErrPoolClosed", err)
	}
	// Shutdown is idempotent.
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown = %v", err)
	}
}

func TestPoolDoHonorsSubmitterContext(t *testing.T) {
	block := make(chan struct{})
	exec := func(spec RunSpec, _ time.Duration, claim func() bool) RunRecord {
		<-block
		return stubExecutor()(spec, 0, claim)
	}
	p := NewPool(PoolConfig{Workers: 1, Timeout: -1, Execute: exec})
	// Occupy the only worker.
	go p.Do(context.Background(), poolSpec(0))
	time.Sleep(10 * time.Millisecond)
	// A second submitter with a canceled context must not wait forever for
	// the busy worker.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Do(ctx, poolSpec(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do with canceled ctx = %v, want context.Canceled", err)
	}
	close(block)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown after unblocking = %v", err)
	}
}

func TestPoolShutdownAbandonsOnExpiredContext(t *testing.T) {
	block := make(chan struct{})
	exec := func(spec RunSpec, _ time.Duration, claim func() bool) RunRecord {
		<-block
		return stubExecutor()(spec, 0, claim)
	}
	p := NewPool(PoolConfig{Workers: 1, Timeout: -1, Grace: 10 * time.Millisecond, Execute: exec})
	recCh := make(chan RunRecord, 1)
	go func() {
		rec, err := p.Do(context.Background(), poolSpec(0))
		if err != nil {
			t.Errorf("dispatched Do returned error %v, want a record", err)
		}
		recCh <- rec
	}()
	time.Sleep(20 * time.Millisecond) // let the worker pick up the job
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown with a wedged run returned nil, want deadline error")
	}
	select {
	case rec := <-recCh:
		// A dispatched spec always yields a record — here the explicit
		// abandoned-run error record, never silence.
		if rec.Error == "" {
			t.Fatalf("abandoned run produced a success record: %+v", rec)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("submitter never got a record for the abandoned run")
	}
	close(block) // release the wedged goroutine
}

func TestPoolBreakerShedsFailingCell(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewPool(PoolConfig{
		Workers:  1,
		Metrics:  reg,
		Breakers: NewBreakerSet(BreakerConfig{Consecutive: 2}),
		Execute:  failingStub(),
	})
	defer p.Shutdown(context.Background())
	var skips int
	for i := 0; i < 6; i++ {
		rec, err := p.Do(context.Background(), poolSpec(i))
		if err != nil {
			t.Fatal(err)
		}
		if IsBreakerSkip(rec) {
			skips++
		}
	}
	if skips == 0 {
		t.Fatal("breaker never opened after consecutive failures")
	}
}
