package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"safemeasure/internal/telemetry"
)

// failingStub returns an executor that fails every run (or only the listed
// techniques when any are given) with a fast stub record — no lab execution.
func failingStub(failTechniques ...string) Executor {
	failAll := len(failTechniques) == 0
	return func(spec RunSpec, _ time.Duration, claim func() bool) RunRecord {
		fail := failAll
		for _, tech := range failTechniques {
			if spec.Technique == tech {
				fail = true
			}
		}
		rec := RunRecord{Scenario: spec.Scenario, Impairment: recordImpairment(spec.Impairment),
			Trial: spec.Trial}
		rec.Technique = spec.Technique
		rec.Seed = spec.Seed
		if fail {
			rec.Error = "stub: vantage dead"
		} else {
			rec.Correct = true
		}
		claim()
		return rec
	}
}

func TestFailureBudgetAborts(t *testing.T) {
	p := smallPlan(t, 21) // 6 specs
	reg := telemetry.NewRegistry()
	recs, err := Run(p, Options{
		Workers: 1,
		Metrics: reg,
		Budget:  &FailureBudget{Fraction: 0.5, MinRuns: 3},
		Execute: failingStub(),
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if len(recs) >= len(p.Specs) {
		t.Fatalf("budget abort dispatched the whole plan (%d records)", len(recs))
	}
	if len(recs) < 3 {
		t.Fatalf("aborted before MinRuns: %d records", len(recs))
	}
	// Partial records stay plan-ordered (a worker=1 abort dispatches a
	// prefix) and every one carries its coordinates for -resume.
	for i, rec := range recs {
		spec := p.Specs[i]
		if rec.Technique != spec.Technique || rec.Trial != spec.Trial {
			t.Fatalf("partial record %d out of plan order: %+v", i, rec)
		}
		if rec.Error == "" {
			t.Fatalf("failing stub produced a clean record: %+v", rec)
		}
	}
	if got := reg.Counter("campaign_budget_aborts_total").Value(); got != 1 {
		t.Fatalf("budget_aborts_total = %d, want 1", got)
	}
	// The partial file resumes to completion once the executor heals; error
	// records re-run, so resume covers everything the abort cut short.
	rest := p.Remaining(DoneSet(recs))
	recs2, err := Run(rest, Options{Workers: 2, Execute: failingStub("no-such")})
	if err != nil {
		t.Fatal(err)
	}
	// Every partial record was an error, so resume re-runs the whole plan.
	if len(recs2) != len(p.Specs) {
		t.Fatalf("resume covered %d of %d specs", len(recs2), len(p.Specs))
	}
	for _, rec := range recs2 {
		if rec.Error != "" {
			t.Fatalf("resumed run still failing: %+v", rec)
		}
	}
}

func TestFailureBudgetToleratesErrorsWithinBudget(t *testing.T) {
	p := smallPlan(t, 22) // 6 specs; "spam" fails in 2 of them
	recs, err := Run(p, Options{
		Workers: 2,
		// MinRuns 4: the worst transient (both spam failures among the first
		// four completions) is exactly 0.5, within the budget's fraction.
		Budget:  &FailureBudget{Fraction: 0.5, MinRuns: 4},
		Execute: failingStub("spam"),
	})
	if err != nil {
		t.Fatalf("budget tripped within its fraction: %v", err)
	}
	if len(recs) != len(p.Specs) {
		t.Fatalf("records = %d, want the full plan", len(recs))
	}
}

// TestBreakerSkipsDoNotSpendBudget pins the interaction contract: runs an
// open breaker sheds are excluded from the failure-budget fraction on both
// sides, so a tripped breaker starves the budget of observations instead of
// spending it.
func TestBreakerSkipsDoNotSpendBudget(t *testing.T) {
	p := smallPlan(t, 23) // 3 cells x 2 trials
	recs, err := Run(p, Options{
		Workers:  1,
		Breakers: NewBreakerSet(BreakerConfig{Consecutive: 1, Cooldown: 100}),
		// Fraction 0 with MinRuns 4: a fourth *executed* failure would abort,
		// but each cell's breaker opens after its first failure, so only 3
		// runs ever execute and the budget never has enough evidence.
		Budget:  &FailureBudget{Fraction: 0, MinRuns: 4},
		Execute: failingStub(),
	})
	if err != nil {
		t.Fatalf("breaker skips spent the failure budget: %v", err)
	}
	var skips, executed int
	for _, rec := range recs {
		if IsBreakerSkip(rec) {
			skips++
		} else if rec.Error != "" {
			executed++
		}
	}
	if executed != 3 || skips != 3 {
		t.Fatalf("executed=%d skips=%d, want 3 and 3", executed, skips)
	}
}

// TestBreakerSkipRecordsResume pins that skip records are re-run on resume
// like any other error record, so shedding never loses coverage.
func TestBreakerSkipRecordsResume(t *testing.T) {
	p := smallPlan(t, 24)
	recs, err := Run(p, Options{
		Workers:  1,
		Breakers: NewBreakerSet(BreakerConfig{Consecutive: 1, Cooldown: 100}),
		Execute:  failingStub(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rest := p.Remaining(DoneSet(recs))
	if len(rest.Specs) != len(p.Specs) {
		t.Fatalf("resume re-runs %d of %d specs; error and skip records must all requeue",
			len(rest.Specs), len(p.Specs))
	}
}

func TestHedgedCampaignByteIdentical(t *testing.T) {
	// Hedging must change tail latency only, never results: a 1ns delay
	// hedges essentially every run, and the sorted records must still be
	// byte-identical to the unhedged campaign because both attempts compute
	// the same seed-deterministic record and only one wins the claim gate.
	base, err := Run(smallPlan(t, 31), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	hedged, err := Run(smallPlan(t, 31), Options{
		Workers: 2,
		Metrics: reg,
		Hedge:   HedgeConfig{Delay: time.Nanosecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sortedJSONL(t, hedged) != sortedJSONL(t, base) {
		t.Fatalf("hedging changed campaign results:\n--- base ---\n%s\n--- hedged ---\n%s",
			sortedJSONL(t, base), sortedJSONL(t, hedged))
	}
	launched := reg.Counter("campaign_hedged_runs_total").Value()
	if launched == 0 {
		t.Fatal("1ns hedge delay never launched a hedge attempt")
	}
	if wins := reg.Counter("campaign_hedge_wins_total").Value(); wins > launched {
		t.Fatalf("hedge wins %d exceed launches %d", wins, launched)
	}
}

func TestHedgeQuantileWaitsForSamples(t *testing.T) {
	// Quantile mode has nothing to derive a delay from until MinSamples runs
	// have completed; with MinSamples above the plan size it must behave
	// exactly like the unhedged pool.
	reg := telemetry.NewRegistry()
	recs, err := Run(smallPlan(t, 32), Options{
		Workers: 2,
		Metrics: reg,
		Hedge:   HedgeConfig{Quantile: 0.95, MinSamples: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Error != "" {
			t.Fatalf("run failed: %+v", rec)
		}
	}
	if got := reg.Counter("campaign_hedged_runs_total").Value(); got != 0 {
		t.Fatalf("hedges launched before the sample gate: %d", got)
	}
}

func TestWatchdogFiresOnStall(t *testing.T) {
	p := smallPlan(t, 33).Filter(func(s RunSpec) bool { return s.Index == 0 })
	reg := telemetry.NewRegistry()
	var dump bytes.Buffer
	recs, err := Run(p, Options{
		Workers:    1,
		Timeout:    -1, // no per-run timeout: the watchdog is the only sentinel
		StallAfter: 30 * time.Millisecond,
		StallDump:  &dump,
		Metrics:    reg,
		Execute: func(spec RunSpec, _ time.Duration, claim func() bool) RunRecord {
			time.Sleep(250 * time.Millisecond) // a silent, wedged campaign
			rec := RunRecord{Scenario: spec.Scenario, Trial: spec.Trial}
			rec.Technique = spec.Technique
			rec.Seed = spec.Seed
			claim()
			return rec
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Error != "" {
		t.Fatalf("run failed: %+v", recs[0])
	}
	if got := reg.Counter("campaign_watchdog_stalls_total").Value(); got < 1 {
		t.Fatalf("watchdog_stalls_total = %d, want >= 1", got)
	}
	out := dump.String()
	if !strings.Contains(out, "no run completed for") || !strings.Contains(out, "goroutine") {
		t.Fatalf("stall dump missing diagnosis:\n%s", out)
	}
}

func TestWatchdogQuietOnHealthyCampaign(t *testing.T) {
	reg := telemetry.NewRegistry()
	var dump bytes.Buffer
	if _, err := Run(smallPlan(t, 34), Options{
		Workers:    2,
		StallAfter: 10 * time.Second,
		StallDump:  &dump,
		Metrics:    reg,
	}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("campaign_watchdog_stalls_total").Value(); got != 0 {
		t.Fatalf("watchdog fired %d times on a healthy campaign", got)
	}
	if dump.Len() != 0 {
		t.Fatalf("unexpected stall dump:\n%s", dump.String())
	}
}

// TestSupervisedProgressDeterministicAcrossWorkerCounts is the /progress
// satellite check: per-cell error and skip counts in the snapshot are
// scheduling-independent, so the JSON-marshaled snapshot is byte-identical at
// workers 1 and 8.
func TestSupervisedProgressDeterministicAcrossWorkerCounts(t *testing.T) {
	var snapshots []string
	for _, workers := range []int{1, 8} {
		p := smallPlan(t, 35)
		prog := NewProgress(p)
		recs, err := Run(p, Options{
			Workers:  workers,
			OnRecord: prog.Record,
			Execute:  failingStub("spam"),
		})
		if err != nil {
			t.Fatal(err)
		}
		snap := prog.Snapshot()
		if snap.Done != len(recs) || snap.Planned != len(p.Specs) {
			t.Fatalf("workers=%d: snapshot %+v vs %d records", workers, snap, len(recs))
		}
		if snap.Errors != 2 {
			t.Fatalf("workers=%d: errors = %d, want 2 (both spam trials)", workers, snap.Errors)
		}
		raw, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		snapshots = append(snapshots, string(raw))
	}
	if snapshots[0] != snapshots[1] {
		t.Fatalf("progress snapshot diverges across worker counts:\n%s\nvs\n%s",
			snapshots[0], snapshots[1])
	}
}

// TestProgressSurfacesBreakerState pins the /progress annotation: a tripped
// cell shows its skip count and live breaker state; healthy cells show
// neither.
func TestProgressSurfacesBreakerState(t *testing.T) {
	p := smallPlan(t, 36)
	bs := NewBreakerSet(BreakerConfig{Consecutive: 1, Cooldown: 100})
	prog := NewProgress(p)
	prog.Breakers(bs)
	if _, err := Run(p, Options{
		Workers:  1,
		Breakers: bs,
		OnRecord: prog.Record,
		Execute:  failingStub("spam"),
	}); err != nil {
		t.Fatal(err)
	}
	snap := prog.Snapshot()
	if snap.Skipped != 1 {
		t.Fatalf("snapshot skipped = %d, want 1 (second spam trial shed)", snap.Skipped)
	}
	var spam, healthy *CellProgress
	for i := range snap.Cells {
		switch snap.Cells[i].Technique {
		case "spam":
			spam = &snap.Cells[i]
		default:
			healthy = &snap.Cells[i]
		}
	}
	if spam == nil || spam.Breaker != "open" || spam.Skipped != 1 || spam.Errors != 1 {
		t.Fatalf("spam cell = %+v, want open breaker with 1 error + 1 skip", spam)
	}
	if healthy == nil || healthy.Breaker != "" || healthy.Skipped != 0 {
		t.Fatalf("healthy cell mislabeled: %+v", healthy)
	}
}

// TestBudgetObserveTripsExactlyOnce covers the budget state machine directly:
// the trip is edge-triggered so the abort counter and context cancel fire
// once no matter how many failures follow.
func TestBudgetObserveTripsExactlyOnce(t *testing.T) {
	b := &budgetState{budget: FailureBudget{Fraction: 0.25, MinRuns: 4}}
	var trips atomic.Int32
	for i := 0; i < 12; i++ {
		if b.observe(true) {
			trips.Add(1)
		}
	}
	if trips.Load() != 1 {
		t.Fatalf("budget tripped %d times, want exactly once", trips.Load())
	}
	completed, errs, tripped := b.snapshot()
	if completed != 12 || errs != 12 || !tripped {
		t.Fatalf("snapshot = (%d, %d, %v)", completed, errs, tripped)
	}
}
