package campaign

import (
	"math"
	"strings"
	"testing"
)

func TestAggregate(t *testing.T) {
	mk := func(scenario, technique string, stealth, correct, flagged bool, alerts int, score float64, errMsg string) RunRecord {
		rec := RunRecord{Scenario: scenario, Correct: correct, Error: errMsg}
		rec.Technique = technique
		rec.Stealth = stealth
		rec.Flagged = flagged
		rec.Alerts = alerts
		rec.Retained = true // metadata retention is near-universal
		rec.Score = score
		rec.ElapsedMS = 100
		return rec
	}
	recs := []RunRecord{
		mk("dns-poison", "overt-dns", false, true, true, 3, 2.0, ""),
		mk("dns-poison", "overt-dns", false, true, true, 5, 4.0, ""),
		mk("dns-poison", "spam", true, true, false, 0, 0.5, ""),
		mk("dns-poison", "spam", true, false, false, 0, 0.5, ""),
		mk("dns-poison", "spam", true, false, false, 0, 0, "lab: boom"),
	}
	sum := Aggregate(recs)
	if sum.Runs != 5 || sum.Errors != 1 {
		t.Fatalf("totals: %+v", sum)
	}
	if len(sum.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(sum.Cells))
	}
	overt, spam := sum.Cells[0], sum.Cells[1]
	if overt.Technique != "overt-dns" || spam.Technique != "spam" {
		t.Fatalf("cell order: %+v", sum.Cells)
	}
	if overt.Runs != 2 || overt.Accuracy() != 1 || overt.FlagRate() != 1 || overt.EvasionRate() != 0 {
		t.Fatalf("overt cell: %+v", overt)
	}
	if math.Abs(overt.Score.Mean()-3.0) > 1e-12 {
		t.Fatalf("overt mean score = %v", overt.Score.Mean())
	}
	if spam.Runs != 2 || spam.Errors != 1 || spam.Accuracy() != 0.5 ||
		spam.FlagRate() != 0 || spam.EvasionRate() != 1 {
		t.Fatalf("spam cell: %+v", spam)
	}
	if sum.Overt.FlagRate() != 1 || sum.Stealth.FlagRate() != 0 {
		t.Fatalf("family flag rates: overt %+v stealth %+v", sum.Overt, sum.Stealth)
	}

	text := sum.Render()
	for _, want := range []string{"dns-poison", "overt-dns", "spam", "flag rate", "accuracy", "(+1err)"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
}

func TestAggregateEmpty(t *testing.T) {
	sum := Aggregate(nil)
	if sum.Runs != 0 || len(sum.Cells) != 0 {
		t.Fatalf("empty aggregate: %+v", sum)
	}
	if !strings.Contains(sum.Render(), "0 runs") {
		t.Fatalf("render: %s", sum.Render())
	}
}
