package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"safemeasure/internal/core"
	"safemeasure/internal/telemetry"
)

// ErrPoolClosed is returned by Pool.Do when the pool has begun shutting
// down before the spec could be dispatched. A spec that WAS dispatched
// always yields a record, even through a shutdown (possibly an error record
// if the drain grace expired).
var ErrPoolClosed = errors.New("campaign: pool closed")

// errPoolDraining marks records of specs that were queued when shutdown
// abandoned the drain — explicit, like breaker skips, so callers can tell
// "never ran" from "ran and failed".
var errPoolDraining = errors.New("skipped: pool draining")

// PoolConfig parameterizes NewPool. The knobs mirror the per-campaign
// Options where they overlap; callback plumbing (OnRecord/OnTrace) is
// absent because a persistent pool returns each record to its submitter.
type PoolConfig struct {
	// Workers bounds concurrency; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Timeout is the wall-clock budget per run; 0 means 60s, negative
	// disables it.
	Timeout time.Duration
	// Grace bounds how long an in-flight run may keep executing after
	// Shutdown's context expires before it is abandoned through the claim
	// gate; 0 means DefaultGrace.
	Grace time.Duration
	// Horizon is the population cover-traffic horizon per run; 0 means
	// DefaultHorizon.
	Horizon time.Duration
	// Retry is the per-probe retry policy threaded into every run.
	Retry core.RetryPolicy
	// Breakers, when set, gates every run through the shared per-cell
	// circuit breakers — service-wide, not per request, so a cell that
	// keeps failing is shed no matter which client asks for it.
	Breakers *BreakerSet
	// Metrics receives the same pool counters RunContext publishes
	// (campaign_runs_inflight, campaign_run_wall_seconds,
	// campaign_run_virtual_ms, per-family run counters), so service-mode
	// metrics stay comparable with batch-mode ones.
	Metrics *telemetry.Registry
	// Execute overrides the per-spec executor (tests); nil means the
	// instrumented default with staged-metrics claim semantics.
	Execute Executor
}

// poolJob is one submitted spec plus the channel its record returns on.
type poolJob struct {
	spec RunSpec
	done chan RunRecord // buffered(1): the worker's send never blocks
}

// Pool is a persistent, bounded worker pool executing RunSpecs one at a
// time — the long-running sibling of RunContext's per-campaign pool. Where
// RunContext owns a whole plan and drains, a Pool outlives any plan: many
// submitters share its workers concurrently (the measured service schedules
// every client's runs onto one Pool), and the pool only stops at Shutdown.
// Execution semantics are identical to the batch pool: per-run wall-clock
// timeout, panic recovery, the abandoned-run claim gate, staged telemetry
// merged only on claim, and per-cell breakers when configured.
type Pool struct {
	cfg      PoolConfig
	timeout  time.Duration
	grace    time.Duration
	execute  Executor
	jobs     chan poolJob
	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
	submitWG sync.WaitGroup

	workers  int
	inflight *telemetry.Gauge
	wallHist *telemetry.Histogram
	virtHist *telemetry.Histogram
}

// NewPool starts the workers and returns the running pool.
func NewPool(cfg PoolConfig) *Pool {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 60 * time.Second
	}
	grace := cfg.Grace
	if grace == 0 {
		grace = DefaultGrace
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		cfg:      cfg,
		timeout:  timeout,
		grace:    grace,
		jobs:     make(chan poolJob),
		ctx:      ctx,
		cancel:   cancel,
		workers:  workers,
		inflight: cfg.Metrics.Gauge("campaign_runs_inflight"),
	}
	if cfg.Metrics != nil {
		p.wallHist = cfg.Metrics.HistogramBuckets("campaign_run_wall_seconds", 1e-3, 2, 24)
		p.virtHist = cfg.Metrics.HistogramBuckets("campaign_run_virtual_ms", 1, 2, 24)
	}
	p.execute = cfg.Execute
	if p.execute == nil {
		// The default executor's callback guard is trivial here: a Pool has
		// no OnRecord/OnTrace callbacks to protect.
		p.execute = Options{Metrics: cfg.Metrics, Retry: cfg.Retry}.
			defaultExecutor(func(string, func()) {})
	}
	cfg.Breakers.instrument(cfg.Metrics)
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// worker executes jobs until the jobs channel closes at Shutdown.
func (p *Pool) worker() {
	defer p.wg.Done()
	for job := range p.jobs {
		var rec RunRecord
		allow, probe := p.cfg.Breakers.Allow(job.spec)
		switch {
		case p.ctx.Err() != nil:
			// Shutdown abandoned the drain: fast-fail whatever is still
			// queued instead of burning the grace per job.
			rec = errorRecord(job.spec, errPoolDraining)
		case !allow:
			rec = errorRecord(job.spec, errBreakerOpen)
		default:
			p.inflight.Add(1)
			start := time.Now()
			rec = runGuarded(p.ctx, job.spec, p.execute, p.cfg.Horizon, p.timeout, p.grace, nil)
			p.wallHist.Observe(time.Since(start).Seconds())
			p.inflight.Add(-1)
			p.cfg.Breakers.Record(job.spec, rec.Error != "", probe)
		}
		accountRun(p.cfg.Metrics, job.spec, rec, p.virtHist)
		job.done <- rec
	}
}

// Do executes one spec on the pool and returns its record. It blocks until
// a worker is free, the run completes, ctx is canceled, or the pool shuts
// down; ctx cancellation only aborts the wait for a worker — once the spec
// is dispatched the run completes regardless (its record is still returned),
// so shared consumers like a result cache never lose work a client paid for.
func (p *Pool) Do(ctx context.Context, spec RunSpec) (RunRecord, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return RunRecord{}, ErrPoolClosed
	}
	// Registered before the send so Shutdown cannot close the jobs channel
	// out from under a blocked sender.
	p.submitWG.Add(1)
	p.mu.Unlock()
	job := poolJob{spec: spec, done: make(chan RunRecord, 1)}
	select {
	case p.jobs <- job:
		p.submitWG.Done()
	case <-ctx.Done():
		p.submitWG.Done()
		return RunRecord{}, ctx.Err()
	case <-p.ctx.Done():
		p.submitWG.Done()
		return RunRecord{}, ErrPoolClosed
	}
	return <-job.done, nil
}

// Shutdown stops admitting new specs and drains: queued and in-flight runs
// complete normally while ctx lasts. When ctx expires first, in-flight runs
// are abandoned through the claim gate after the pool grace (their
// submitters get explicit error records, never silence) and ctx's error is
// returned — so a nil return is the "clean drain, nothing abandoned"
// signal the service smoke test asserts on.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already {
		// In-flight Do calls either complete their send (a worker takes the
		// job) or bail via ctx/pool cancellation; either way submitWG drains
		// and the channel close below cannot race a send. If ctx expires
		// while senders are still parked behind busy workers, cancel the
		// pool so they bail with ErrPoolClosed instead of pinning Shutdown.
		waited := make(chan struct{})
		go func() { p.submitWG.Wait(); close(waited) }()
		select {
		case <-waited:
		case <-ctx.Done():
			p.cancel()
			<-waited
		}
		close(p.jobs)
	}
	done := make(chan struct{})
	go func() { p.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		p.cancel() // abandon in-flight runs after the pool grace
		<-done
		return fmt.Errorf("campaign: pool shutdown: %w", ctx.Err())
	}
}

// accountRun publishes the shared per-run campaign counters for one
// completed record — one code path for the batch pool (RunContext) and the
// persistent service pool, so service-mode metrics stay comparable with
// batch-mode ones.
func accountRun(m *telemetry.Registry, spec RunSpec, rec RunRecord, virtHist *telemetry.Histogram) {
	if m == nil {
		return
	}
	fam := familyOf(spec.Technique)
	m.Counter(telemetry.Labels("campaign_runs_total", "family", fam)).Inc()
	if rec.Error != "" {
		m.Counter("campaign_errors_total").Inc()
		return
	}
	virtHist.Observe(rec.ElapsedMS)
	if rec.Correct {
		m.Counter(telemetry.Labels("campaign_correct_total", "family", fam)).Inc()
	}
	if rec.Verdict == "inconclusive" {
		m.Counter(telemetry.Labels("campaign_inconclusive_total", "family", fam)).Inc()
	}
}
