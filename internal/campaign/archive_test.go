package campaign

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"safemeasure/internal/archival"
	"safemeasure/internal/core"
	"safemeasure/internal/telemetry"
)

// randRunRecord samples the RunRecord space, including sparse corners: error
// records (all measurement fields zero), empty slices, and zero floats.
func randRunRecord(rng *rand.Rand) RunRecord {
	pick := func(ss ...string) string { return ss[rng.Intn(len(ss))] }
	rec := RunRecord{
		Scenario:   pick("open", "keyword-rst", "dns-poison"),
		Impairment: pick("", "lossy20", "jitter"),
		Trial:      rng.Intn(500),
		Record: core.Record{
			Technique: pick("direct", "vpn-relay", "spoofed-dns", "spoofed-smtp"),
			Seed:      rng.Int63(),
		},
	}
	if rng.Intn(8) == 0 {
		// Failed run: identity plus error, nothing else.
		rec.Error = pick("lab: link down", "panic: index out of range", "timeout")
		return rec
	}
	rec.Target = "198.51.100.7:80"
	rec.Stealth = rng.Intn(2) == 0
	rec.Verdict = pick("censored", "accessible", "inconclusive")
	rec.Mechanism = pick("", "tcp-rst", "dns-nxdomain")
	rec.Probes = rng.Intn(10)
	rec.Cover = rng.Intn(10)
	rec.Attempts = 1 + rng.Intn(3)
	for i := 0; i < rng.Intn(4); i++ {
		rec.CoverAddresses = append(rec.CoverAddresses, fmt.Sprintf("203.0.113.%d", i))
	}
	for i := 0; i < rng.Intn(3); i++ {
		rec.Evidence = append(rec.Evidence, pick("rst seen", "empty answer", "truncated reply"))
	}
	rec.ElapsedMS = float64(rng.Intn(100000)) / 8
	rec.Retained = rng.Intn(2) == 0
	rec.Alerts = rng.Intn(5)
	rec.Score = float64(rng.Intn(80)) / 4
	rec.Entropy = float64(rng.Intn(32)) / 8
	rec.Implicated = rng.Intn(6)
	rec.Flagged = rng.Intn(2) == 0
	rec.GroundTruth = rng.Intn(2) == 0
	rec.Correct = rng.Intn(2) == 0
	return rec
}

// TestFlattenUnflattenRoundTrip is the core archival property: record →
// observations → record is the identity, for sparse and dense records alike.
func TestFlattenUnflattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		want := randRunRecord(rng)
		obs := FlattenRecord(want)
		got, err := UnflattenRecord(obs)
		if err != nil {
			t.Fatalf("rec %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rec %d round trip:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestFlattenRoundTripThroughBinary runs the full pipeline: record →
// observations → binary encoding → observations → record.
func TestFlattenRoundTripThroughBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var recs []RunRecord
	var buf bytes.Buffer
	w := archival.NewBinaryWriter(&buf)
	sink := NewObservationSink(w)
	for i := 0; i < 50; i++ {
		rec := randRunRecord(rng)
		recs = append(recs, rec)
		sink.Record(rec)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := archival.NewReader(&buf, archival.TailStrict, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []RunRecord
	var runObs []archival.Observation
	flushRun := func() {
		if len(runObs) == 0 {
			return
		}
		rec, err := UnflattenRecord(runObs)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
		runObs = runObs[:0]
	}
	for {
		o, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(runObs) > 0 && o.Run != runObs[0].Run {
			flushRun()
		}
		runObs = append(runObs, o)
	}
	flushRun()
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("pipeline round trip diverged: got %d records, want %d", len(got), len(recs))
	}
}

// TestFlattenRowIdentity checks every row carries the run's full cell
// identity and a unique content-derived observation ID.
func TestFlattenRowIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rec := randRunRecord(rng)
	rec.CoverAddresses = []string{"203.0.113.1", "203.0.113.2"}
	rec.Evidence = []string{"rst seen"}
	obs := FlattenRecord(rec)
	if len(obs) == 0 {
		t.Fatal("no rows")
	}
	run := archival.RunID(rec.Technique, rec.Scenario, rec.Impairment, rec.Behavior, rec.Trial, rec.Seed)
	seen := map[uint64]bool{}
	for _, o := range obs {
		if o.Run != run {
			t.Fatalf("row %+v has run %d, want %d", o, o.Run, run)
		}
		if o.Technique != rec.Technique || o.Scenario != rec.Scenario ||
			o.Impairment != rec.Impairment || o.Trial != rec.Trial || o.Seed != rec.Seed {
			t.Fatalf("row %+v lost cell identity", o)
		}
		if o.ID == 0 || seen[o.ID] {
			t.Fatalf("row %+v has duplicate or zero id", o)
		}
		seen[o.ID] = true
		if o.ID != archival.ObservationID(o.Run, o.Type, o.Seq) {
			t.Fatalf("row %+v id not content-derived", o)
		}
	}
}

// TestUnflattenRejectsMixedRuns guards the batch-grouping invariant.
func TestUnflattenRejectsMixedRuns(t *testing.T) {
	a := FlattenRecord(RunRecord{Scenario: "open", Trial: 1,
		Record: core.Record{Technique: "direct", Seed: 1, Verdict: "accessible"}})
	b := FlattenRecord(RunRecord{Scenario: "open", Trial: 2,
		Record: core.Record{Technique: "direct", Seed: 2, Verdict: "censored"}})
	if _, err := UnflattenRecord(append(a, b...)); err == nil {
		t.Fatal("mixed-run batch accepted")
	}
	if _, err := UnflattenRecord(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestUnflattenAnyOrder: rows may arrive in any order (e.g. after a sort by
// type in an analysis pipeline) and still reconstruct the record.
func TestUnflattenAnyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	want := randRunRecord(rng)
	want.Error = ""
	want.CoverAddresses = []string{"a", "b", "c"}
	want.Evidence = []string{"x", "y"}
	obs := FlattenRecord(want)
	rng.Shuffle(len(obs), func(i, j int) { obs[i], obs[j] = obs[j], obs[i] })
	got, err := UnflattenRecord(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shuffled round trip:\n got %+v\nwant %+v", got, want)
	}
}

// TestFlattenTraceJoinsRecordRun: trace rows share the record rows' run ID
// for the same cell.
func TestFlattenTraceJoinsRecordRun(t *testing.T) {
	rec := RunRecord{Scenario: "open", Impairment: "lossy20", Trial: 7,
		Record: core.Record{Technique: "spoofed-dns", Seed: 99, Verdict: "censored"}}
	rt := RunTrace{Scenario: "open", Impairment: "lossy20", Technique: "spoofed-dns",
		Trial: 7, Seed: 99,
		Events: []telemetry.Event{
			{T: 10, Kind: "probe-sent", Src: "10.0.0.1", Dst: "198.51.100.7", Detail: "GET /"},
			{T: 20, Kind: "rst-seen", Src: "198.51.100.7", Dst: "10.0.0.1"},
		}}
	recObs := FlattenRecord(rec)
	trObs := FlattenTrace(rt)
	if len(trObs) != 2 {
		t.Fatalf("trace rows = %d, want 2", len(trObs))
	}
	if recObs[0].Run != trObs[0].Run {
		t.Fatalf("trace run %d != record run %d", trObs[0].Run, recObs[0].Run)
	}
	for i, o := range trObs {
		if o.Type != archival.TypeTrace || o.Seq != i {
			t.Fatalf("trace row %d: %+v", i, o)
		}
	}
	// Trace rows mixed into a record batch are ignored by UnflattenRecord.
	got, err := UnflattenRecord(append(recObs, trObs...))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("got %+v want %+v", got, rec)
	}
}
