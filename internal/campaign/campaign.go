// Package campaign turns the repo's one-lab-at-a-time measurement core into
// a throughput layer: it plans a run matrix (techniques × censorship
// scenarios × trial seeds), shards it across a bounded worker pool — one
// isolated lab per run, every seed derived deterministically from the
// campaign seed so results are reproducible regardless of scheduling — and
// streams each completed run to a JSONL sink before aggregating the
// campaign into per-technique/per-scenario accuracy, MVR-evasion,
// analyst-flag, and attribution-entropy tables (the paper's E11 matrix at
// campaign scale).
//
// The pieces compose left to right:
//
//	NewPlan → Run(plan, Options{Workers, OnRecord: sink.Write}) → Aggregate
//
// Each run builds its own lab.Lab and drains it in virtual time, so runs
// never share state and the only nondeterminism a worker pool introduces is
// completion *order*; sorting the JSONL lines of two campaigns with equal
// seeds but different worker counts yields byte-identical files.
package campaign

import (
	"safemeasure/internal/core"
)

// RunRecord is one campaign run: the shared measurement record plus the
// plan coordinates that produced it and the scenario's ground truth. It is
// the JSONL line format of the sink.
type RunRecord struct {
	Scenario string `json:"scenario"`
	// Impairment names the link-impairment preset the run's lab carried
	// (omitted for the pristine link).
	Impairment string `json:"impairment,omitempty"`
	// Behavior names the adversarial censor-behavior preset the run's
	// censor carried (omitted for the faithful censor).
	Behavior string `json:"behavior,omitempty"`
	Trial    int    `json:"trial"`
	core.Record
	// GroundTruth is whether the scenario really censors the target;
	// Correct is whether the verdict matched it.
	GroundTruth bool `json:"ground_truth_censored"`
	Correct     bool `json:"correct"`
	// Error is set when the run failed (lab construction, panic, timeout);
	// all measurement fields are zero in that case.
	Error string `json:"error,omitempty"`
}
