package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"safemeasure/internal/core"
	"safemeasure/internal/telemetry"
)

// DefaultGrace is how long RunContext lets in-flight runs keep going after
// the context is canceled before abandoning them, when Options.Grace is 0.
const DefaultGrace = 10 * time.Second

// Executor produces the record for one spec. The claim callback reports
// whether the run still owns its slot: it returns true exactly once, and
// false forever after the pool has abandoned the run (wall-clock timeout or
// drain-grace expiry), in which case the executor must not publish any side
// effects (traces, shared metrics).
type Executor func(spec RunSpec, horizon time.Duration, claim func() bool) RunRecord

// Options parameterizes Run.
type Options struct {
	// Workers bounds concurrency; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Timeout is the wall-clock budget per run; a run exceeding it yields
	// an error record instead of stalling the campaign. 0 means 60s;
	// negative disables the timeout.
	Timeout time.Duration
	// Grace bounds how long an in-flight run may keep executing after the
	// context is canceled before the pool abandons it with an error record.
	// 0 means DefaultGrace; negative drains fully, however long runs take.
	Grace time.Duration
	// Horizon is the population cover-traffic horizon per run; 0 means
	// DefaultHorizon.
	Horizon time.Duration
	// Retry is the per-probe retry policy threaded into every run; the zero
	// value means core.DefaultRetryPolicy(). core.SingleShot() reproduces
	// the pre-resilience scoring.
	Retry core.RetryPolicy
	// OnRecord, when set, receives every record as its run completes —
	// typically a JSONL sink's Write. It may be called from multiple
	// workers at once; sinks in this package are safe for that. A panic in
	// the callback is recovered and retained as the campaign's error — it
	// never kills the worker (which would strand the spec feed).
	OnRecord func(RunRecord)
	// Metrics, when set, receives pool-level metrics (queue depth, run
	// latency, per-family success counters) and the per-run hot-path
	// counters. Each run stages its hot-path metrics in a private registry
	// and merges them in atomically on completion, so an abandoned
	// (timed-out) run never touches shared state; because every merge is an
	// integer sum, final values are independent of Workers. Only the
	// wall-clock histogram varies run to run.
	Metrics *telemetry.Registry
	// OnTrace, when set, enables per-run packet-path tracing and receives
	// each run's event stream as it completes. Like OnRecord it may be
	// called from multiple workers at once and is panic-guarded.
	OnTrace func(RunTrace)
	// TraceCap bounds each run's trace ring; 0 means DefaultTraceCap.
	TraceCap int
	// Execute overrides the per-spec executor — chaos wrappers and tests
	// exercise the pool's recovery paths with it; nil means the
	// instrumented default (see Executor for the claim contract).
	Execute Executor
}

// familyOf groups techniques into the paper's families for the labeled
// campaign counters.
func familyOf(technique string) string {
	switch technique {
	case "overt-dns", "overt-http", "overt-tcp":
		return "overt"
	case "syn-scan", "spam", "ddos":
		return "mimicry"
	default:
		return "spoofed"
	}
}

// defaultExecutor builds the instrumented executor Run uses when
// Options.Execute is nil: per-run staged metrics, optional tracing, and the
// claim gate before any shared-state publication.
func (opts Options) defaultExecutor(guard func(kind string, f func())) Executor {
	return func(spec RunSpec, horizon time.Duration, claim func() bool) RunRecord {
		// Hot-path metrics stage in a registry private to this run and
		// merge into the shared one only if the run still owns its slot:
		// a goroutine the pool abandoned at the timeout must not keep
		// bumping campaign-wide counters from the past.
		var staged *telemetry.Registry
		if opts.Metrics != nil {
			staged = telemetry.NewRegistry()
		}
		rec, events := ExecuteInstrumented(spec, ExecConfig{
			Horizon:  horizon,
			Metrics:  staged,
			Trace:    opts.OnTrace != nil,
			TraceCap: opts.TraceCap,
			Retry:    opts.Retry,
		})
		if !claim() {
			return rec // abandoned: the timeout record already went out
		}
		opts.Metrics.Merge(staged)
		if opts.OnTrace != nil {
			guard("OnTrace", func() {
				opts.OnTrace(RunTrace{
					Scenario: spec.Scenario, Impairment: recordImpairment(spec.Impairment),
					Technique: spec.Technique, Trial: spec.Trial, Events: events,
				})
			})
		}
		return rec
	}
}

// Run shards the plan across a bounded worker pool and returns every record
// in plan order; it is RunContext without cancellation.
func Run(plan *Plan, opts Options) ([]RunRecord, error) {
	return RunContext(context.Background(), plan, opts)
}

// RunContext is Run with a lifecycle: when ctx is canceled the pool stops
// dispatching, lets in-flight runs drain within Options.Grace (then abandons
// them with error records, behind the same claim gate as the timeout path),
// and returns the records of every run that was dispatched — still in plan
// order — together with ctx.Err(). Undispatched specs simply produce no
// record, which is exactly the shape -resume needs to finish the campaign
// later. A panic in OnRecord/OnTrace is recovered, counted, and retained as
// the returned error; the campaign keeps draining either way.
func RunContext(ctx context.Context, plan *Plan, opts Options) ([]RunRecord, error) {
	if plan == nil || len(plan.Specs) == 0 {
		return nil, fmt.Errorf("campaign: empty plan")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plan.Specs) {
		workers = len(plan.Specs)
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 60 * time.Second
	}
	grace := opts.Grace
	if grace == 0 {
		grace = DefaultGrace
	}

	// Callback panics are recovered where the callback is invoked, counted,
	// and the first one is retained as the campaign error: a failing sink
	// must degrade to a reported error, never to a dead worker silently
	// stranding the unbuffered spec feed.
	var cbMu sync.Mutex
	var cbErr error
	cbPanics := opts.Metrics.Counter("campaign_callback_panics_total")
	guard := func(kind string, f func()) {
		defer func() {
			if p := recover(); p != nil {
				cbPanics.Inc()
				cbMu.Lock()
				if cbErr == nil {
					cbErr = fmt.Errorf("campaign: %s callback panicked: %v", kind, p)
				}
				cbMu.Unlock()
			}
		}()
		f()
	}
	execute := opts.Execute
	if execute == nil {
		execute = opts.defaultExecutor(guard)
	}

	// Pool-level metrics. Every handle is nil-safe, so a nil registry costs
	// one comparison per use. The wall-clock histogram is the only
	// nondeterministic metric; the virtual-time one depends only on seeds.
	queued := opts.Metrics.Gauge("campaign_queue_depth")
	inflight := opts.Metrics.Gauge("campaign_runs_inflight")
	var wallHist, virtHist *telemetry.Histogram
	if opts.Metrics != nil {
		wallHist = opts.Metrics.HistogramBuckets("campaign_run_wall_seconds", 1e-3, 2, 24)
		virtHist = opts.Metrics.HistogramBuckets("campaign_run_virtual_ms", 1, 2, 24)
	}
	queued.Set(int64(len(plan.Specs)))

	records := make([]RunRecord, len(plan.Specs))
	specs := make(chan RunSpec)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range specs {
				queued.Add(-1)
				inflight.Add(1)
				start := time.Now()
				rec := runGuarded(ctx, spec, execute, opts.Horizon, timeout, grace)
				wallHist.Observe(time.Since(start).Seconds())
				inflight.Add(-1)
				if m := opts.Metrics; m != nil {
					fam := familyOf(spec.Technique)
					m.Counter(telemetry.Labels("campaign_runs_total", "family", fam)).Inc()
					if rec.Error != "" {
						m.Counter("campaign_errors_total").Inc()
					} else {
						virtHist.Observe(rec.ElapsedMS)
						if rec.Correct {
							m.Counter(telemetry.Labels("campaign_correct_total", "family", fam)).Inc()
						}
						if rec.Verdict == "inconclusive" {
							m.Counter(telemetry.Labels("campaign_inconclusive_total", "family", fam)).Inc()
						}
					}
				}
				records[spec.Index] = rec
				if opts.OnRecord != nil {
					guard("OnRecord", func() { opts.OnRecord(rec) })
				}
			}
		}()
	}
	// Dispatch until the plan is exhausted or the context cancels; specs
	// already handed to a worker always produce a record (dispatched is
	// written only here, before close, and read only after wg.Wait).
	dispatched := make([]bool, len(plan.Specs))
	ndispatched := 0
dispatch:
	for _, spec := range plan.Specs {
		// The explicit Err check first: a select with a ready worker AND a
		// canceled context picks randomly, which would leak specs into a
		// campaign that already asked to stop.
		if ctx.Err() != nil {
			break
		}
		select {
		case specs <- spec:
			dispatched[spec.Index] = true
			ndispatched++
		case <-ctx.Done():
			break dispatch
		}
	}
	close(specs)
	wg.Wait()

	cbMu.Lock()
	err := cbErr
	cbMu.Unlock()
	if ctxErr := ctx.Err(); ctxErr != nil {
		if m := opts.Metrics; m != nil {
			m.Counter("campaign_cancel_total").Inc()
			m.Counter("campaign_canceled_specs_total").Add(int64(len(plan.Specs) - ndispatched))
		}
		queued.Set(0) // undispatched specs are no longer pending
		partial := make([]RunRecord, 0, ndispatched)
		for i, rec := range records {
			if dispatched[i] {
				partial = append(partial, rec)
			}
		}
		return partial, errors.Join(ctxErr, err)
	}
	return records, err
}

// runGuarded executes one spec with panic recovery, a wall-clock timeout,
// and cancellation-with-grace. The run proceeds in a fresh goroutine so a
// wedged simulator cannot occupy a worker forever; on timeout — or on
// context cancel once the drain grace expires — the goroutine is abandoned.
// The claim token decides which side owns the outcome: exactly one of the
// run (just before publishing its traces and staged metrics) and the
// abandon path wins the CompareAndSwap, so an abandoned run can never leak
// side effects into the campaign after its error record was emitted.
func runGuarded(ctx context.Context, spec RunSpec, execute Executor,
	horizon, timeout, grace time.Duration) RunRecord {
	var claimed atomic.Bool
	claim := func() bool { return claimed.CompareAndSwap(false, true) }
	done := make(chan RunRecord, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				// The buffered send cannot block: a panic means the normal
				// send never happened. If the timeout already claimed the
				// run, nobody reads this record and it is simply dropped.
				done <- errorRecord(spec, fmt.Errorf("panic: %v", p))
			}
		}()
		done <- execute(spec, horizon, claim)
	}()
	var timeoutC <-chan time.Time
	if timeout >= 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	ctxDone := ctx.Done()
	var graceC <-chan time.Time
	for {
		select {
		case rec := <-done:
			return rec
		case <-timeoutC:
			if claim() {
				return errorRecord(spec, fmt.Errorf("run exceeded %v wall-clock timeout", timeout))
			}
			// The run claimed completion between the timer firing and our
			// claim attempt; its side effects are published, take its record.
			return <-done
		case <-ctxDone:
			// Canceled: give the run the drain grace, then abandon it. A
			// negative grace drains fully (no deadline beyond the timeout).
			ctxDone = nil
			if grace >= 0 {
				graceTimer := time.NewTimer(grace)
				defer graceTimer.Stop()
				graceC = graceTimer.C
			}
		case <-graceC:
			if claim() {
				return errorRecord(spec, fmt.Errorf(
					"campaign canceled: run abandoned after %v drain grace", grace))
			}
			return <-done
		}
	}
}
