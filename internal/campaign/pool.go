package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"safemeasure/internal/core"
	"safemeasure/internal/telemetry"
)

// DefaultGrace is how long RunContext lets in-flight runs keep going after
// the context is canceled before abandoning them, when Options.Grace is 0.
const DefaultGrace = 10 * time.Second

// Executor produces the record for one spec. The claim callback reports
// whether the run still owns its slot: it returns true exactly once, and
// false forever after the pool has abandoned the run (wall-clock timeout or
// drain-grace expiry) or a hedged sibling attempt completed first, in which
// case the executor must not publish any side effects (traces, shared
// metrics).
type Executor func(spec RunSpec, horizon time.Duration, claim func() bool) RunRecord

// ErrBudgetExceeded is wrapped into RunContext's returned error when the
// campaign aborted because its failure budget was spent. The partial records
// are still returned plan-ordered, so the caller can flush them and print a
// -resume hint; test with errors.Is.
var ErrBudgetExceeded = errors.New("campaign: failure budget exceeded")

// DefaultBudgetMinRuns is how many runs must complete before the failure
// budget is enforced when FailureBudget.MinRuns is 0 — early enough to stop
// a campaign that is failing wholesale, late enough that one unlucky first
// run cannot abort everything.
const DefaultBudgetMinRuns = 8

// FailureBudget aborts a campaign whose error fraction exceeds what the
// operator budgeted for. The paper's scaling argument cuts both ways: a
// campaign grinding through a dead vantage or a tarpitting censor is pure
// exposure with no measurement value, so past the budget the right move is
// to stop, flush, and leave a resumable file.
type FailureBudget struct {
	// Fraction is the error fraction of completed runs allowed before the
	// campaign aborts. Breaker skips count toward neither side: a skipped
	// run spent no budget and took no risk.
	Fraction float64
	// MinRuns is how many runs must complete (skips excluded) before the
	// budget is enforced; 0 means DefaultBudgetMinRuns.
	MinRuns int
}

// budgetState tracks completed/errored runs and trips at most once.
type budgetState struct {
	mu        sync.Mutex
	budget    FailureBudget
	completed int
	errors    int
	tripped   bool
}

// observe folds one executed run in and reports whether this observation
// tripped the budget (true exactly once).
func (b *budgetState) observe(failed bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.completed++
	if failed {
		b.errors++
	}
	minRuns := b.budget.MinRuns
	if minRuns <= 0 {
		minRuns = DefaultBudgetMinRuns
	}
	if b.tripped || b.completed < minRuns {
		return false
	}
	if float64(b.errors)/float64(b.completed) > b.budget.Fraction {
		b.tripped = true
		return true
	}
	return false
}

// snapshot returns the counts at (or after) the trip for the error message.
func (b *budgetState) snapshot() (completed, errs int, tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.completed, b.errors, b.tripped
}

// DefaultHedgeMinSamples is how many wall-clock latency samples a
// quantile-derived hedge delay needs before it arms, when
// HedgeConfig.MinSamples is 0.
const DefaultHedgeMinSamples = 16

// HedgeConfig enables hedged execution for stragglers: when a run has been
// in flight longer than the hedge delay, a second attempt of the same spec
// launches and the first completion wins through the pool's claim gate. The
// loser's staged telemetry is discarded by the same gate that protects
// abandoned runs, and because runs are seed-deterministic the two attempts
// compute identical records — hedging changes tail latency, never results.
// The zero value disables hedging entirely.
type HedgeConfig struct {
	// Delay is a fixed hedge delay; takes precedence over Quantile.
	Delay time.Duration
	// Quantile, when Delay is 0, derives the delay from the campaign's live
	// wall-clock run-latency histogram (e.g. 0.95 hedges past the p95).
	// Until MinSamples runs have completed there is nothing to derive from
	// and runs are not hedged.
	Quantile float64
	// MinSamples gates the quantile mode; 0 means DefaultHedgeMinSamples.
	MinSamples int
}

// enabled reports whether any hedging mode is configured.
func (h HedgeConfig) enabled() bool { return h.Delay > 0 || h.Quantile > 0 }

// hedgeRuntime is the pool's per-campaign hedging state: a delay oracle and
// the two counters.
type hedgeRuntime struct {
	delay    func() time.Duration // 0 means "do not hedge this run"
	launched *telemetry.Counter
	wins     *telemetry.Counter
}

// DefaultStallFactor sets the stall watchdog threshold to this multiple of
// the per-run timeout when Options.StallAfter is 0.
const DefaultStallFactor = 3

// Options parameterizes Run.
type Options struct {
	// Workers bounds concurrency; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Timeout is the wall-clock budget per run; a run exceeding it yields
	// an error record instead of stalling the campaign. 0 means 60s;
	// negative disables the timeout.
	Timeout time.Duration
	// Grace bounds how long an in-flight run may keep executing after the
	// context is canceled — or the failure budget aborts the campaign —
	// before the pool abandons it with an error record. 0 means
	// DefaultGrace; negative drains fully, however long runs take.
	Grace time.Duration
	// Horizon is the population cover-traffic horizon per run; 0 means
	// DefaultHorizon.
	Horizon time.Duration
	// Retry is the per-probe retry policy threaded into every run; the zero
	// value means core.DefaultRetryPolicy(). core.SingleShot() reproduces
	// the pre-resilience scoring.
	Retry core.RetryPolicy
	// Breakers, when set, gates every run through a per-cell circuit
	// breaker: a cell whose runs keep failing is skipped (explicit
	// BreakerOpenError records, so resume and aggregates stay exact) until
	// a half-open probe succeeds. nil runs everything.
	Breakers *BreakerSet
	// Budget, when set, aborts the campaign once the error fraction of
	// completed runs exceeds Budget.Fraction: dispatch stops, in-flight
	// runs drain within Grace, and RunContext returns the plan-ordered
	// partial records with ErrBudgetExceeded. nil never aborts.
	Budget *FailureBudget
	// Hedge enables hedged execution for stragglers; the zero value is off
	// and byte-identical to the unhedged pool.
	Hedge HedgeConfig
	// StallAfter arms the stall watchdog: if no run completes for this
	// long while the campaign is mid-flight, campaign_watchdog_stalls_total
	// increments and a goroutine dump is written to StallDump for
	// diagnosis. 0 derives DefaultStallFactor× the run timeout (when the
	// timeout is active); negative disables the watchdog.
	StallAfter time.Duration
	// StallDump receives the watchdog's goroutine dump; nil keeps just the
	// counter.
	StallDump io.Writer
	// OnRecord, when set, receives every record as its run completes —
	// typically a JSONL sink's Write. It may be called from multiple
	// workers at once; sinks in this package are safe for that. A panic in
	// the callback is recovered and retained as the campaign's error — it
	// never kills the worker (which would strand the spec feed).
	OnRecord func(RunRecord)
	// Metrics, when set, receives pool-level metrics (queue depth, run
	// latency, per-family success counters) and the per-run hot-path
	// counters. Each run stages its hot-path metrics in a private registry
	// and merges them in atomically on completion, so an abandoned
	// (timed-out) run never touches shared state; because every merge is an
	// integer sum, final values are independent of Workers. Only the
	// wall-clock histogram varies run to run.
	Metrics *telemetry.Registry
	// OnTrace, when set, enables per-run packet-path tracing and receives
	// each run's event stream as it completes. Like OnRecord it may be
	// called from multiple workers at once and is panic-guarded.
	OnTrace func(RunTrace)
	// TraceCap bounds each run's trace ring; 0 means DefaultTraceCap.
	TraceCap int
	// Execute overrides the per-spec executor — chaos wrappers and tests
	// exercise the pool's recovery paths with it; nil means the
	// instrumented default (see Executor for the claim contract).
	Execute Executor
}

// familyOf groups techniques into the paper's families for the labeled
// campaign counters.
func familyOf(technique string) string {
	switch technique {
	case "overt-dns", "overt-http", "overt-tcp":
		return "overt"
	case "syn-scan", "spam", "ddos":
		return "mimicry"
	default:
		return "spoofed"
	}
}

// defaultExecutor builds the instrumented executor Run uses when
// Options.Execute is nil: per-run staged metrics, optional tracing, and the
// claim gate before any shared-state publication.
func (opts Options) defaultExecutor(guard func(kind string, f func())) Executor {
	return func(spec RunSpec, horizon time.Duration, claim func() bool) RunRecord {
		// Hot-path metrics stage in a registry private to this run and
		// merge into the shared one only if the run still owns its slot:
		// a goroutine the pool abandoned at the timeout — or a hedged
		// attempt that lost the race — must not keep bumping campaign-wide
		// counters from the past.
		var staged *telemetry.Registry
		if opts.Metrics != nil {
			staged = telemetry.NewRegistry()
		}
		rec, events := ExecuteInstrumented(spec, ExecConfig{
			Horizon:  horizon,
			Metrics:  staged,
			Trace:    opts.OnTrace != nil,
			TraceCap: opts.TraceCap,
			Retry:    opts.Retry,
		})
		if !claim() {
			return rec // abandoned or out-hedged: another record went out
		}
		opts.Metrics.Merge(staged)
		if opts.OnTrace != nil {
			guard("OnTrace", func() {
				opts.OnTrace(RunTrace{
					Scenario: spec.Scenario, Impairment: recordImpairment(spec.Impairment),
					Behavior:  recordBehavior(spec.Behavior),
					Technique: spec.Technique, Trial: spec.Trial, Seed: spec.Seed,
					Events: events,
				})
			})
		}
		return rec
	}
}

// Run shards the plan across a bounded worker pool and returns every record
// in plan order; it is RunContext without cancellation.
func Run(plan *Plan, opts Options) ([]RunRecord, error) {
	return RunContext(context.Background(), plan, opts)
}

// RunContext is Run with a lifecycle: when ctx is canceled the pool stops
// dispatching, lets in-flight runs drain within Options.Grace (then abandons
// them with error records, behind the same claim gate as the timeout path),
// and returns the records of every run that was dispatched — still in plan
// order — together with ctx.Err(). A tripped failure budget takes the same
// drain path but returns ErrBudgetExceeded instead. Undispatched specs
// simply produce no record, which is exactly the shape -resume needs to
// finish the campaign later. A panic in OnRecord/OnTrace is recovered,
// counted, and retained as the returned error; the campaign keeps draining
// either way.
func RunContext(ctx context.Context, plan *Plan, opts Options) ([]RunRecord, error) {
	if plan == nil || len(plan.Specs) == 0 {
		return nil, fmt.Errorf("campaign: empty plan")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plan.Specs) {
		workers = len(plan.Specs)
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 60 * time.Second
	}
	grace := opts.Grace
	if grace == 0 {
		grace = DefaultGrace
	}

	// Callback panics are recovered where the callback is invoked, counted,
	// and the first one is retained as the campaign error: a failing sink
	// must degrade to a reported error, never to a dead worker silently
	// stranding the unbuffered spec feed.
	var cbMu sync.Mutex
	var cbErr error
	cbPanics := opts.Metrics.Counter("campaign_callback_panics_total")
	guard := func(kind string, f func()) {
		defer func() {
			if p := recover(); p != nil {
				cbPanics.Inc()
				cbMu.Lock()
				if cbErr == nil {
					cbErr = fmt.Errorf("campaign: %s callback panicked: %v", kind, p)
				}
				cbMu.Unlock()
			}
		}()
		f()
	}
	execute := opts.Execute
	if execute == nil {
		execute = opts.defaultExecutor(guard)
	}
	opts.Breakers.instrument(opts.Metrics)

	// Pool-level metrics. Every handle is nil-safe, so a nil registry costs
	// one comparison per use. The wall-clock histogram is the only
	// nondeterministic metric; the virtual-time one depends only on seeds.
	queued := opts.Metrics.Gauge("campaign_queue_depth")
	inflight := opts.Metrics.Gauge("campaign_runs_inflight")
	var wallHist, virtHist *telemetry.Histogram
	if opts.Metrics != nil {
		wallHist = opts.Metrics.HistogramBuckets("campaign_run_wall_seconds", 1e-3, 2, 24)
		virtHist = opts.Metrics.HistogramBuckets("campaign_run_virtual_ms", 1, 2, 24)
	}
	queued.Set(int64(len(plan.Specs)))

	// Hedging: a quantile-derived delay needs the wall histogram even when
	// the campaign publishes no metrics, so give it a private one.
	var hedge *hedgeRuntime
	if opts.Hedge.enabled() {
		cfg := opts.Hedge
		if cfg.Delay <= 0 && wallHist == nil {
			wallHist = telemetry.NewRegistry().HistogramBuckets("campaign_run_wall_seconds", 1e-3, 2, 24)
		}
		minSamples := cfg.MinSamples
		if minSamples <= 0 {
			minSamples = DefaultHedgeMinSamples
		}
		hist := wallHist
		hedge = &hedgeRuntime{
			launched: opts.Metrics.Counter("campaign_hedged_runs_total"),
			wins:     opts.Metrics.Counter("campaign_hedge_wins_total"),
			delay: func() time.Duration {
				if cfg.Delay > 0 {
					return cfg.Delay
				}
				if hist.Count() < int64(minSamples) {
					return 0
				}
				d := time.Duration(hist.Quantile(cfg.Quantile) * float64(time.Second))
				if d < time.Millisecond {
					d = time.Millisecond
				}
				return d
			},
		}
	}

	// The failure budget aborts through a context derived from the caller's:
	// dispatch and the drain-grace machinery see one cancellation signal
	// whether the user interrupted or the budget tripped; the two cases are
	// told apart after the pool drains.
	runCtx, abort := context.WithCancel(ctx)
	defer abort()
	var budget *budgetState
	budgetTrips := opts.Metrics.Counter("campaign_budget_aborts_total")
	if opts.Budget != nil {
		budget = &budgetState{budget: *opts.Budget}
	}

	// Stall watchdog: fires when no record has completed for stallAfter
	// while the campaign is still mid-flight — the signature of every worker
	// wedged at once (or a deadlock this layer introduced), which per-run
	// timeouts alone cannot distinguish from slow progress.
	stallAfter := opts.StallAfter
	if stallAfter == 0 && timeout > 0 {
		stallAfter = DefaultStallFactor * timeout
	}
	var lastDone atomic.Int64
	lastDone.Store(time.Now().UnixNano())
	if stallAfter > 0 {
		stalls := opts.Metrics.Counter("campaign_watchdog_stalls_total")
		stop := make(chan struct{})
		watchDone := make(chan struct{})
		go func() {
			defer close(watchDone)
			period := stallAfter / 8
			if period < 5*time.Millisecond {
				period = 5 * time.Millisecond
			}
			tick := time.NewTicker(period)
			defer tick.Stop()
			fired := false
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				idle := time.Since(time.Unix(0, lastDone.Load()))
				if idle < stallAfter {
					fired = false // progress resumed: re-arm for the next episode
					continue
				}
				if fired {
					continue // one report per stall episode
				}
				fired = true
				stalls.Inc()
				if opts.StallDump != nil {
					fmt.Fprintf(opts.StallDump,
						"campaign: watchdog: no run completed for %v (threshold %v); goroutine dump:\n",
						idle.Round(time.Millisecond), stallAfter)
					_, _ = telemetry.GoroutineDump(opts.StallDump)
				}
			}
		}()
		// The watchdog must be fully stopped before RunContext returns so a
		// caller-owned StallDump writer is never written to after return.
		defer func() { close(stop); <-watchDone }()
	}

	records := make([]RunRecord, len(plan.Specs))
	specs := make(chan RunSpec)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range specs {
				queued.Add(-1)
				var rec RunRecord
				allow, probe := opts.Breakers.Allow(spec)
				if !allow {
					// Skipped by an open breaker: an explicit error record
					// with no execution, so the sink, aggregates, and a
					// later -resume all see exactly which runs were shed.
					rec = errorRecord(spec, errBreakerOpen)
				} else {
					inflight.Add(1)
					start := time.Now()
					rec = runGuarded(runCtx, spec, execute, opts.Horizon, timeout, grace, hedge)
					wallHist.Observe(time.Since(start).Seconds())
					inflight.Add(-1)
					opts.Breakers.Record(spec, rec.Error != "", probe)
					if budget != nil && budget.observe(rec.Error != "") {
						budgetTrips.Inc()
						abort()
					}
				}
				lastDone.Store(time.Now().UnixNano())
				accountRun(opts.Metrics, spec, rec, virtHist)
				records[spec.Index] = rec
				if opts.OnRecord != nil {
					guard("OnRecord", func() { opts.OnRecord(rec) })
				}
			}
		}()
	}
	// Dispatch until the plan is exhausted or the run context cancels
	// (caller interrupt or budget abort); specs already handed to a worker
	// always produce a record (dispatched is written only here, before
	// close, and read only after wg.Wait).
	dispatched := make([]bool, len(plan.Specs))
	ndispatched := 0
dispatch:
	for _, spec := range plan.Specs {
		// The explicit Err check first: a select with a ready worker AND a
		// canceled context picks randomly, which would leak specs into a
		// campaign that already asked to stop.
		if runCtx.Err() != nil {
			break
		}
		select {
		case specs <- spec:
			dispatched[spec.Index] = true
			ndispatched++
		case <-runCtx.Done():
			break dispatch
		}
	}
	close(specs)
	wg.Wait()

	cbMu.Lock()
	err := cbErr
	cbMu.Unlock()
	partialOf := func() []RunRecord {
		queued.Set(0) // undispatched specs are no longer pending
		partial := make([]RunRecord, 0, ndispatched)
		for i, rec := range records {
			if dispatched[i] {
				partial = append(partial, rec)
			}
		}
		return partial
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		if m := opts.Metrics; m != nil {
			m.Counter("campaign_cancel_total").Inc()
			m.Counter("campaign_canceled_specs_total").Add(int64(len(plan.Specs) - ndispatched))
		}
		return partialOf(), errors.Join(ctxErr, err)
	}
	if budget != nil {
		if completed, errs, tripped := budget.snapshot(); tripped {
			return partialOf(), errors.Join(fmt.Errorf(
				"%w: %d of %d completed runs errored (budget %.3f); undispatched runs left for -resume",
				ErrBudgetExceeded, errs, completed, opts.Budget.Fraction), err)
		}
	}
	return records, err
}

// attemptOut is one execution attempt's result, tagged with the attempt id
// so runGuarded can tell a hedge winner from a loser.
type attemptOut struct {
	rec RunRecord
	id  int32
}

// poolAttempt is the claim id runGuarded uses when IT claims a run — at the
// timeout or the drain-grace expiry — rather than any executing attempt.
const poolAttempt int32 = -1

// runGuarded executes one spec with panic recovery, a wall-clock timeout,
// cancellation-with-grace, and optional hedging. Each attempt proceeds in a
// fresh goroutine so a wedged simulator cannot occupy a worker forever; on
// timeout — or on context cancel once the drain grace expires — the
// goroutines are abandoned. When a hedge is armed and the first attempt is
// still in flight past the hedge delay, a second attempt of the same spec
// launches; all attempts and the abandon path share one claim token, so
// exactly one side owns the outcome: the claiming attempt's record is
// returned and every loser's staged telemetry is discarded by the gate it
// failed. The wall-clock timeout spans the whole run, hedged or not.
func runGuarded(ctx context.Context, spec RunSpec, execute Executor,
	horizon, timeout, grace time.Duration, hedge *hedgeRuntime) RunRecord {
	var claimed atomic.Bool
	var winner atomic.Int32
	claimFor := func(id int32) func() bool {
		return func() bool {
			if claimed.CompareAndSwap(false, true) {
				winner.Store(id)
				return true
			}
			return false
		}
	}
	done := make(chan attemptOut, 2) // buffered: losers send and exit, never leak
	launch := func(id int32) {
		claim := claimFor(id)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					// The buffered send cannot block: a panic means the
					// normal send never happened. A panicking attempt does
					// not claim, mirroring the unhedged pool: if nobody else
					// owns the run, its error record is what gets returned.
					done <- attemptOut{errorRecord(spec, fmt.Errorf("panic: %v", p)), id}
				}
			}()
			done <- attemptOut{execute(spec, horizon, claim), id}
		}()
	}
	launch(0)
	pending := 1
	poolClaim := claimFor(poolAttempt)

	// awaitWinner drains attempt results until the claiming attempt's
	// record arrives — the pool lost the claim race, so some attempt owns
	// the outcome and its send is guaranteed (claim happens inside the
	// attempt before it returns or panics).
	awaitWinner := func() RunRecord {
		for {
			out := <-done
			if out.id == winner.Load() {
				return out.rec
			}
		}
	}

	var timeoutC <-chan time.Time
	if timeout >= 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	var hedgeC <-chan time.Time
	if hedge != nil {
		if d := hedge.delay(); d > 0 {
			hedgeTimer := time.NewTimer(d)
			defer hedgeTimer.Stop()
			hedgeC = hedgeTimer.C
		}
	}
	ctxDone := ctx.Done()
	var graceC <-chan time.Time
	for {
		select {
		case out := <-done:
			pending--
			if claimed.Load() {
				if out.id != winner.Load() {
					continue // a loser finished first; the winner's send is coming
				}
				if out.id > 0 {
					hedge.wins.Inc()
				}
				return out.rec
			}
			// Nobody claimed (the attempt panicked before claiming, or the
			// executor never called claim). With another attempt still in
			// flight, wait for it; otherwise this record is the outcome,
			// exactly as in the unhedged pool.
			if pending == 0 {
				return out.rec
			}
		case <-hedgeC:
			hedgeC = nil
			hedge.launched.Inc()
			launch(1)
			pending++
		case <-timeoutC:
			if poolClaim() {
				return errorRecord(spec, fmt.Errorf("run exceeded %v wall-clock timeout", timeout))
			}
			// An attempt claimed completion between the timer firing and our
			// claim attempt; its side effects are published, take its record.
			return awaitWinner()
		case <-ctxDone:
			// Canceled: give the run the drain grace, then abandon it. A
			// negative grace drains fully (no deadline beyond the timeout).
			ctxDone = nil
			if grace >= 0 {
				graceTimer := time.NewTimer(grace)
				defer graceTimer.Stop()
				graceC = graceTimer.C
			}
		case <-graceC:
			if poolClaim() {
				return errorRecord(spec, fmt.Errorf(
					"campaign canceled: run abandoned after %v drain grace", grace))
			}
			return awaitWinner()
		}
	}
}
