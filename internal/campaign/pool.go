package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"safemeasure/internal/core"
	"safemeasure/internal/telemetry"
)

// Options parameterizes Run.
type Options struct {
	// Workers bounds concurrency; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Timeout is the wall-clock budget per run; a run exceeding it yields
	// an error record instead of stalling the campaign. 0 means 60s;
	// negative disables the timeout.
	Timeout time.Duration
	// Horizon is the population cover-traffic horizon per run; 0 means
	// DefaultHorizon.
	Horizon time.Duration
	// Retry is the per-probe retry policy threaded into every run; the zero
	// value means core.DefaultRetryPolicy(). core.SingleShot() reproduces
	// the pre-resilience scoring.
	Retry core.RetryPolicy
	// OnRecord, when set, receives every record as its run completes —
	// typically a JSONL sink's Write. It may be called from multiple
	// workers at once; sinks in this package are safe for that.
	OnRecord func(RunRecord)
	// Metrics, when set, receives pool-level metrics (queue depth, run
	// latency, per-family success counters) and the per-run hot-path
	// counters. Each run stages its hot-path metrics in a private registry
	// and merges them in atomically on completion, so an abandoned
	// (timed-out) run never touches shared state; because every merge is an
	// integer sum, final values are independent of Workers. Only the
	// wall-clock histogram varies run to run.
	Metrics *telemetry.Registry
	// OnTrace, when set, enables per-run packet-path tracing and receives
	// each run's event stream as it completes. Like OnRecord it may be
	// called from multiple workers at once.
	OnTrace func(RunTrace)
	// TraceCap bounds each run's trace ring; 0 means DefaultTraceCap.
	TraceCap int
	// execute overrides the per-spec executor (tests exercise the pool's
	// recovery paths with it); nil means the instrumented Execute. The
	// claim callback reports whether the run still owns its slot: it
	// returns true exactly once, and false forever after the pool has
	// abandoned the run, in which case the executor must not publish any
	// side effects (traces, shared metrics).
	execute func(spec RunSpec, horizon time.Duration, claim func() bool) RunRecord
}

// familyOf groups techniques into the paper's families for the labeled
// campaign counters.
func familyOf(technique string) string {
	switch technique {
	case "overt-dns", "overt-http", "overt-tcp":
		return "overt"
	case "syn-scan", "spam", "ddos":
		return "mimicry"
	default:
		return "spoofed"
	}
}

// Run shards the plan across a bounded worker pool and returns every record
// in plan order. Each run is isolated in its own lab, guarded by panic
// recovery and the wall-clock timeout; a failed run becomes an error record,
// never a lost slot. The returned slice is ordered by RunSpec.Index, so its
// contents are independent of worker count and scheduling.
func Run(plan *Plan, opts Options) ([]RunRecord, error) {
	if plan == nil || len(plan.Specs) == 0 {
		return nil, fmt.Errorf("campaign: empty plan")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plan.Specs) {
		workers = len(plan.Specs)
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 60 * time.Second
	}
	execute := opts.execute
	if execute == nil {
		execute = func(spec RunSpec, horizon time.Duration, claim func() bool) RunRecord {
			// Hot-path metrics stage in a registry private to this run and
			// merge into the shared one only if the run still owns its slot:
			// a goroutine the pool abandoned at the timeout must not keep
			// bumping campaign-wide counters from the past.
			var staged *telemetry.Registry
			if opts.Metrics != nil {
				staged = telemetry.NewRegistry()
			}
			rec, events := ExecuteInstrumented(spec, ExecConfig{
				Horizon:  horizon,
				Metrics:  staged,
				Trace:    opts.OnTrace != nil,
				TraceCap: opts.TraceCap,
				Retry:    opts.Retry,
			})
			if !claim() {
				return rec // abandoned: the timeout record already went out
			}
			opts.Metrics.Merge(staged)
			if opts.OnTrace != nil {
				opts.OnTrace(RunTrace{
					Scenario: spec.Scenario, Impairment: recordImpairment(spec.Impairment),
					Technique: spec.Technique, Trial: spec.Trial, Events: events,
				})
			}
			return rec
		}
	}

	// Pool-level metrics. Every handle is nil-safe, so a nil registry costs
	// one comparison per use. The wall-clock histogram is the only
	// nondeterministic metric; the virtual-time one depends only on seeds.
	queued := opts.Metrics.Gauge("campaign_queue_depth")
	inflight := opts.Metrics.Gauge("campaign_runs_inflight")
	var wallHist, virtHist *telemetry.Histogram
	if opts.Metrics != nil {
		wallHist = opts.Metrics.HistogramBuckets("campaign_run_wall_seconds", 1e-3, 2, 24)
		virtHist = opts.Metrics.HistogramBuckets("campaign_run_virtual_ms", 1, 2, 24)
	}
	queued.Set(int64(len(plan.Specs)))

	records := make([]RunRecord, len(plan.Specs))
	specs := make(chan RunSpec)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range specs {
				queued.Add(-1)
				inflight.Add(1)
				start := time.Now()
				rec := runGuarded(spec, execute, opts.Horizon, timeout)
				wallHist.Observe(time.Since(start).Seconds())
				inflight.Add(-1)
				if m := opts.Metrics; m != nil {
					fam := familyOf(spec.Technique)
					m.Counter(telemetry.Labels("campaign_runs_total", "family", fam)).Inc()
					if rec.Error != "" {
						m.Counter("campaign_errors_total").Inc()
					} else {
						virtHist.Observe(rec.ElapsedMS)
						if rec.Correct {
							m.Counter(telemetry.Labels("campaign_correct_total", "family", fam)).Inc()
						}
						if rec.Verdict == "inconclusive" {
							m.Counter(telemetry.Labels("campaign_inconclusive_total", "family", fam)).Inc()
						}
					}
				}
				records[spec.Index] = rec
				if opts.OnRecord != nil {
					opts.OnRecord(rec)
				}
			}
		}()
	}
	for _, spec := range plan.Specs {
		specs <- spec
	}
	close(specs)
	wg.Wait()
	return records, nil
}

// runGuarded executes one spec with panic recovery and a wall-clock
// timeout. The run proceeds in a fresh goroutine so a wedged simulator
// cannot occupy a worker forever; on timeout the goroutine is abandoned.
// The claim token decides which side owns the outcome: exactly one of the
// run (just before publishing its traces and staged metrics) and the
// timeout path wins the CompareAndSwap, so an abandoned run can never leak
// side effects into the campaign after its error record was emitted.
func runGuarded(spec RunSpec, execute func(RunSpec, time.Duration, func() bool) RunRecord,
	horizon, timeout time.Duration) RunRecord {
	var claimed atomic.Bool
	claim := func() bool { return claimed.CompareAndSwap(false, true) }
	done := make(chan RunRecord, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				// The buffered send cannot block: a panic means the normal
				// send never happened. If the timeout already claimed the
				// run, nobody reads this record and it is simply dropped.
				done <- errorRecord(spec, fmt.Errorf("panic: %v", p))
			}
		}()
		done <- execute(spec, horizon, claim)
	}()
	if timeout < 0 {
		return <-done
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case rec := <-done:
		return rec
	case <-timer.C:
		if claim() {
			return errorRecord(spec, fmt.Errorf("run exceeded %v wall-clock timeout", timeout))
		}
		// The run claimed completion between the timer firing and our
		// claim attempt; its side effects are published, take its record.
		return <-done
	}
}
