package spamscore

import (
	"fmt"
	"testing"

	"safemeasure/internal/smtpwire"
)

func spamMsg(i int) *smtpwire.Message {
	return &smtpwire.Message{
		From:    fmt.Sprintf("promo%d@megadeals.biz", i),
		To:      "probe@measurement.test",
		Subject: "CONGRATULATIONS WINNER!!!",
		Headers: map[string]string{"Precedence": "bulk"},
		Body: "Dear friend, you have won the international lottery of $1,000,000!\n" +
			"Act now, limited time! Click here to claim your prize:\n" +
			"http://megadeals.biz/claim http://megadeals.biz/win http://megadeals.biz/now\n" +
			"100% free! Unsubscribe anytime.",
	}
}

func hamMsg() *smtpwire.Message {
	return &smtpwire.Message{
		From:    "alice@university.test",
		To:      "bob@university.test",
		Subject: "Meeting notes from yesterday",
		Body:    "Hi Bob,\n\nAttached are the minutes from the meeting. Thanks for presenting.\n\nRegards,\nAlice",
	}
}

func TestSpamTemplateScoresHigh(t *testing.T) {
	sc := New()
	res := sc.Score(spamMsg(0))
	if res.Score < sc.SpamThreshold {
		t.Fatalf("spam template scored %.1f (< threshold %.1f); features: %v", res.Score, sc.SpamThreshold, res.Features)
	}
	if !sc.IsSpam(spamMsg(0)) {
		t.Fatal("IsSpam false for spam template")
	}
}

func TestHamScoresLow(t *testing.T) {
	sc := New()
	res := sc.Score(hamMsg())
	if res.Score >= 40 {
		t.Fatalf("ham scored %.1f; features: %v", res.Score, res.Features)
	}
	if sc.IsSpam(hamMsg()) {
		t.Fatal("IsSpam true for ham")
	}
}

func TestScoreBounds(t *testing.T) {
	sc := New()
	msgs := []*smtpwire.Message{spamMsg(0), hamMsg(), {}, {Subject: "x", Body: "y"}}
	for _, m := range msgs {
		s := sc.Score(m).Score
		if s < 0 || s > 100 {
			t.Fatalf("score %v out of range", s)
		}
	}
}

func TestSeparation(t *testing.T) {
	// The discriminating property behind Figure 2: every spam variant
	// scores well above every ham variant.
	sc := New()
	minSpam, maxHam := 101.0, -1.0
	for i := 0; i < 20; i++ {
		if s := sc.Score(spamMsg(i)).Score; s < minSpam {
			minSpam = s
		}
	}
	hams := []*smtpwire.Message{
		hamMsg(),
		{From: "a@x.test", To: "b@y.test", Subject: "lunch?", Body: "pizza at noon? thanks"},
		{From: "ci@builds.test", To: "dev@y.test", Subject: "build 1234 passed", Body: "all 250 tests green"},
	}
	for _, m := range hams {
		if s := sc.Score(m).Score; s > maxHam {
			maxHam = s
		}
	}
	if minSpam <= maxHam {
		t.Fatalf("no separation: min spam %.1f <= max ham %.1f", minSpam, maxHam)
	}
}

func TestFeatureExplainability(t *testing.T) {
	sc := New()
	res := sc.Score(spamMsg(0))
	found := map[string]bool{}
	for _, f := range res.Features {
		found[f.Name] = true
	}
	for _, want := range []string{"LOTTERY", "CLICK_HERE", "SUBJ_ALL_CAPS", "MANY_URLS", "BIG_MONEY"} {
		if !found[want] {
			t.Errorf("feature %s not reported; got %v", want, res.Features)
		}
	}
}

func TestEmptyMessageScoresZeroish(t *testing.T) {
	sc := New()
	if s := sc.Score(&smtpwire.Message{}).Score; s > 20 {
		t.Fatalf("empty message scored %.1f", s)
	}
}

func TestHamMarkersReduceScore(t *testing.T) {
	sc := New()
	spammy := &smtpwire.Message{Subject: "winner", Body: "click here"}
	withHam := &smtpwire.Message{Subject: "winner", Body: "click here. thanks, regards, see the attached meeting minutes"}
	if sc.Score(withHam).Score >= sc.Score(spammy).Score {
		t.Fatal("ham markers did not reduce score")
	}
}
