// Package spamscore is the lab's stand-in for Proofpoint, the commercial
// spam filter the paper used to validate that its spam-cloaked measurements
// are classified as spam (Figure 2). It is a transparent rule-based scorer:
// weighted content heuristics summed and squashed onto Proofpoint's 0-100
// scale (0 = not spam, 100 = spam).
//
// The goal is shape fidelity, not filter excellence: messages built from
// the lab's spam templates must land in the high-score region, and ordinary
// correspondence must land low — which is what the paper's Figure 2 shows
// for its n=100 test measurements.
package spamscore

import (
	"math"
	"strings"

	"safemeasure/internal/smtpwire"
)

// Feature is one scored heuristic, reported for explainability.
type Feature struct {
	Name   string
	Weight float64
}

// Result is a scored message.
type Result struct {
	Score    float64 // 0..100
	Features []Feature
}

// phrase heuristics with weights, modeled on the classic SpamAssassin-style
// rule corpus.
var phraseRules = []struct {
	needle string
	name   string
	weight float64
}{
	{"viagra", "DRUG_SPAM", 2.5},
	{"cialis", "DRUG_SPAM_2", 2.5},
	{"lottery", "LOTTERY", 2.2},
	{"winner", "WINNER", 1.8},
	{"you have won", "YOU_WON", 2.5},
	{"claim your", "CLAIM", 1.6},
	{"click here", "CLICK_HERE", 1.8},
	{"act now", "URGENCY", 1.5},
	{"limited time", "URGENCY_2", 1.3},
	{"100% free", "FREE_100", 2.0},
	{"no credit check", "CREDIT", 1.8},
	{"earn money", "EARN", 1.5},
	{"work from home", "WFH", 1.4},
	{"unsubscribe", "UNSUB", 0.8},
	{"dear friend", "DEAR_FRIEND", 1.6},
	{"nigerian prince", "ADVANCE_FEE", 3.0},
	{"wire transfer", "WIRE", 1.4},
	{"cheap meds", "MEDS", 2.2},
	{"hot singles", "ADULT", 2.4},
	{"crypto doubling", "CRYPTO", 2.2},
}

// Scorer scores messages. The zero value is not usable; call New.
type Scorer struct {
	// SpamThreshold is the score at or above which a message is treated as
	// spam by the mail pipeline (Proofpoint quarantines high scores).
	SpamThreshold float64
}

// New returns a scorer with the default threshold.
func New() *Scorer { return &Scorer{SpamThreshold: 80} }

// Score evaluates a message.
func (sc *Scorer) Score(m *smtpwire.Message) Result {
	var raw float64
	var feats []Feature
	add := func(name string, w float64) {
		raw += w
		feats = append(feats, Feature{Name: name, Weight: w})
	}

	text := strings.ToLower(m.Subject + "\n" + m.Body)

	for _, r := range phraseRules {
		if strings.Contains(text, r.needle) {
			add(r.name, r.weight)
		}
	}

	// URL density.
	urls := strings.Count(text, "http://") + strings.Count(text, "https://")
	if urls > 0 {
		add("HAS_URL", 0.6)
	}
	if urls >= 3 {
		add("MANY_URLS", 1.5)
	}

	// Shouting subject.
	if caps, letters := countCaps(m.Subject); letters >= 6 && float64(caps) > 0.5*float64(letters) {
		add("SUBJ_ALL_CAPS", 1.7)
	}
	if strings.Count(m.Subject, "!") >= 2 {
		add("SUBJ_EXCLAIM", 1.2)
	}
	if strings.Count(m.Body, "!!!") > 0 {
		add("BODY_EXCLAIM", 1.0)
	}

	// Money amounts: "$1,000,000" and friends.
	if strings.Contains(text, "$") && strings.Contains(text, ",000") {
		add("BIG_MONEY", 1.8)
	}

	// Suspicious sender domain.
	fromDom := smtpwire.Domain(m.From)
	for _, tld := range []string{".biz", ".click", ".top", ".loan"} {
		if strings.HasSuffix(fromDom, tld) {
			add("SPAMMY_TLD", 1.3)
			break
		}
	}
	// From/To domain mismatch plus bulk header.
	if m.Headers != nil {
		if _, ok := m.Headers["X-Bulk"]; ok {
			add("BULK_HEADER", 1.0)
		}
		if prec := m.Headers["Precedence"]; strings.EqualFold(prec, "bulk") {
			add("PRECEDENCE_BULK", 1.0)
		}
	}

	// Ham evidence: real correspondence markers pull the score down.
	for _, marker := range []string{"meeting", "attached", "regards", "thanks", "yesterday", "minutes"} {
		if strings.Contains(text, marker) {
			add("HAM_"+strings.ToUpper(marker), -0.9)
		}
	}
	if raw < 0 {
		raw = 0
	}

	// Squash onto 0..100: a raw of ~10 (a handful of strong rules) maps
	// near the spam threshold, and heavier rule stacks spread across the
	// 80..100 region instead of saturating — matching the spread real
	// gateway scores show across campaign templates.
	score := 100 * (1 - math.Exp(-raw/6.0))
	return Result{Score: score, Features: feats}
}

// IsSpam applies the threshold.
func (sc *Scorer) IsSpam(m *smtpwire.Message) bool {
	return sc.Score(m).Score >= sc.SpamThreshold
}

func countCaps(s string) (caps, letters int) {
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			caps++
			letters++
		case r >= 'a' && r <= 'z':
			letters++
		}
	}
	return caps, letters
}
