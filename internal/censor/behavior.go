package censor

import (
	"hash/fnv"
	"net/netip"
	"time"

	"safemeasure/internal/netsim"
	"safemeasure/internal/packet"
)

// Behavior configures how faithfully the censor enforces its own policy.
// The zero value is the deterministic censor every earlier experiment used:
// every matching flow is acted on, immediately, with complete injections.
// Non-zero fields model the adversarial faults real censors exhibit
// (throttling instead of resetting, probabilistic enforcement, truncated
// blockpages, slow injectors, rate-limited injectors) — the measurement
// pipeline must stay correct, or degrade to inconclusive, under all of them.
//
// All behavior state is seed-deterministic: decisions derive from an FNV
// hash of the behavior seed and flow identity, and rate state advances on
// virtual time only. No wall clock, no shared RNG stream.
type Behavior struct {
	// EnforceProb, when in (0, 1), enforces on only that fraction of
	// matching flows. The decision is sticky per flow (and per address
	// pair for blackholing): a flow the censor decided to spare stays
	// spared, one it decided to block stays blocked — the "intermittent"
	// fault, where re-measuring from a fresh connection may flip the
	// observed outcome. 0 and 1 both mean always enforce.
	EnforceProb float64
	// ThrottleRate, when > 0, replaces RST injection with token-bucket
	// rate shaping: after a keyword/Host alert the (client, server) pair's
	// TCP traffic is delayed to ThrottleRate bytes/second (burst
	// ThrottleBurst bytes) instead of being torn down. The connection
	// crawls rather than dies — censorship that looks like a slow link.
	ThrottleRate  int // bytes per virtual second
	ThrottleBurst int // bytes of burst credit
	// BlockpageBytes, when > 0, replaces the client-side RST with an
	// injected HTTP 403 blockpage truncated after this many wire bytes
	// (Content-Length promises more than is ever sent), followed by a
	// FIN. The server side is still reset. Clients see a partial response
	// on a connection that then dies.
	BlockpageBytes int
	// InjectDelay, when > 0, delays RST injection by this much virtual
	// time after the trigger — the lazy injector whose RSTs race the real
	// response and sometimes lose.
	InjectDelay time.Duration
	// InjectorBudget, when > 0, rate-limits enforcement: the censor holds
	// this many action tokens, each enforcement action (drop, forge,
	// injection, throttle-marking) spends one, and one token refills per
	// InjectorRefill of virtual time. An exhausted censor silently stops
	// enforcing — under load (cover traffic, population browsing) matching
	// flows leak through.
	InjectorBudget int
	InjectorRefill time.Duration
}

// Enabled reports whether any adversarial fault is configured.
func (b Behavior) Enabled() bool {
	return b != Behavior{}
}

// Scheduler is the virtual-time timer source behaviors need (lazy
// injection). *netsim.Sim satisfies it.
type Scheduler interface {
	Schedule(delay time.Duration, fn func())
}

// flowKey is a direction-normalized transport flow (addresses + ports).
type flowKey struct {
	a, b   netip.Addr
	ap, bp uint16
}

func flowKeyOf(src, dst netip.Addr, sp, dp uint16) flowKey {
	if c := src.Compare(dst); c > 0 || (c == 0 && sp > dp) {
		src, dst, sp, dp = dst, src, dp, sp
	}
	return flowKey{a: src, b: dst, ap: sp, bp: dp}
}

// behaviorState is the mutable per-censor half of a Behavior: sticky flow
// decisions, the per-pair shaper clocks, throttled-pair marks, and the
// injector token bucket. All of it advances deterministically from the
// behavior seed and virtual time.
type behaviorState struct {
	b     Behavior
	seed  int64
	sched Scheduler

	decisions  map[flowKey]bool   // intermittent: sticky per-flow enforce/spare
	throttled  map[addrPair]bool  // throttle: pairs under shaping
	shaperFree map[addrPair]int64 // throttle: virtual ns the pair's bucket frees up
	tokens     int                // exhausted: remaining action tokens
	refilledTo int64              // exhausted: virtual ns tokens were last refilled at
}

// SetBehavior installs an adversarial behavior on the censor. seed
// determines the intermittent flow decisions; sched (usually the lab's
// *netsim.Sim) drives lazy injection and may be nil when InjectDelay is
// zero. Call before traffic flows; installing mid-run resets behavior state.
func (c *Censor) SetBehavior(b Behavior, seed int64, sched Scheduler) {
	if !b.Enabled() {
		c.bhv = nil
		return
	}
	c.bhv = &behaviorState{
		b: b, seed: seed, sched: sched,
		decisions:  make(map[flowKey]bool),
		throttled:  make(map[addrPair]bool),
		shaperFree: make(map[addrPair]int64),
		tokens:     b.InjectorBudget,
	}
}

// Behavior returns the installed behavior (zero value when none).
func (c *Censor) Behavior() Behavior {
	if c.bhv == nil {
		return Behavior{}
	}
	return c.bhv.b
}

// flowEnforced returns the sticky intermittent decision for a flow: an FNV
// hash of (seed, normalized flow) mapped to [0, 1) and compared against
// EnforceProb. Memoized so the decision is explicitly stateful (and cheap).
func (st *behaviorState) flowEnforced(key flowKey) bool {
	if d, ok := st.decisions[key]; ok {
		return d
	}
	h := fnv.New64a()
	var buf [8]byte
	putInt64(&buf, st.seed)
	h.Write(buf[:])
	a4, b4 := key.a.As4(), key.b.As4()
	h.Write(a4[:])
	h.Write(b4[:])
	buf[0], buf[1] = byte(key.ap>>8), byte(key.ap)
	buf[2], buf[3] = byte(key.bp>>8), byte(key.bp)
	h.Write(buf[:4])
	// Top 53 bits -> uniform float64 in [0, 1). The extra mix matters:
	// bare FNV avalanches the final bytes poorly, and the flows whose
	// decisions must be independent differ only in the ephemeral port —
	// consecutive retry connections would otherwise share long runs of
	// identical decisions, silently correlating corroboration attempts.
	u := float64(mix64(h.Sum64())>>11) / float64(uint64(1)<<53)
	d := u < st.b.EnforceProb
	st.decisions[key] = d
	return d
}

// mix64 is the splitmix64 finalizer: full-avalanche bit mixing so that
// hash inputs differing in a single low byte still flip every output bit
// with probability 1/2.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func putInt64(buf *[8]byte, v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
	}
}

// budgetOK charges one action token, refilling from elapsed virtual time
// first. Reports false — skip the action — when the injector is exhausted.
func (st *behaviorState) budgetOK(now int64) bool {
	if st.b.InjectorBudget <= 0 {
		return true
	}
	if refill := int64(st.b.InjectorRefill); refill > 0 && now > st.refilledTo {
		n := (now - st.refilledTo) / refill
		if n > 0 {
			st.tokens += int(n)
			if st.tokens > st.b.InjectorBudget {
				st.tokens = st.b.InjectorBudget
			}
			st.refilledTo += n * refill
		}
	}
	if st.tokens <= 0 {
		return false
	}
	st.tokens--
	return true
}

// shapeDelay charges n wire bytes against the pair's token bucket and
// returns how long the datagram must be held. The bucket earns
// ThrottleBurst bytes of credit; beyond that each byte costs 1e9/rate
// virtual ns. Release times are monotone per pair, so shaped datagrams
// never reorder.
func (st *behaviorState) shapeDelay(now int64, pair addrPair, n int) int64 {
	rate := int64(st.b.ThrottleRate)
	if rate <= 0 {
		return 0
	}
	earliest := now - int64(st.b.ThrottleBurst)*int64(time.Second)/rate
	free := st.shaperFree[pair]
	if free < earliest {
		free = earliest
	}
	delay := free - now
	if delay < 0 {
		delay = 0
	}
	st.shaperFree[pair] = free + int64(n)*int64(time.Second)/rate
	return delay
}

// enforce is the per-action gate every enforcement point runs through:
// the intermittent flow decision first, then the injector budget. A true
// return means act (counted censor_enforced_total); false means the
// adversarial censor silently skipped (censor_skipped_total).
func (c *Censor) enforce(now int64, key flowKey) bool {
	st := c.bhv
	if st == nil {
		c.Enforced++
		c.mEnforced.Inc()
		return true
	}
	if st.b.EnforceProb > 0 && st.b.EnforceProb < 1 && !st.flowEnforced(key) {
		c.Skipped++
		c.mSkipped.Inc()
		return false
	}
	if !st.budgetOK(now) {
		c.Skipped++
		c.mSkipped.Inc()
		return false
	}
	c.Enforced++
	c.mEnforced.Inc()
	return true
}

// pairKey is the ports-free flow key used for address-pair mechanisms
// (blackholing), where the sticky decision must cover every flow between
// the two hosts.
func pairKey(src, dst netip.Addr) flowKey {
	return flowKeyOf(src, dst, 0, 0)
}

// markThrottled begins shaping a (client, server) pair; used in place of
// RST injection when ThrottleRate is set.
func (c *Censor) markThrottled(pair addrPair) {
	c.bhv.throttled[pair] = true
}

// shapeVerdict checks whether the datagram belongs to a throttled pair and
// computes its shaping delay. Returns (delay, true) when the router should
// hold the packet.
func (c *Censor) shapeVerdict(tp *netsim.TapPacket, pkt *packet.Packet) (int64, bool) {
	st := c.bhv
	if st == nil || st.b.ThrottleRate <= 0 || pkt == nil || pkt.TCP == nil {
		return 0, false
	}
	pair := pairOf(pkt.IP.Src, pkt.IP.Dst)
	if !st.throttled[pair] {
		return 0, false
	}
	return st.shapeDelay(tp.Time, pair, len(tp.Raw)), true
}

// injectLazy runs inject now, or schedules it InjectDelay of virtual time
// out when the lazy-injector fault is on. The raw datagrams are built by
// the caller before the delay, so what is injected is deterministic.
func (c *Censor) injectLazy(inject func()) {
	st := c.bhv
	if st == nil || st.b.InjectDelay <= 0 || st.sched == nil {
		inject()
		return
	}
	st.sched.Schedule(st.b.InjectDelay, inject)
}

// blockpage builds the (possibly truncated) forged 403 response body. The
// Content-Length header always promises the full page; truncation cuts the
// wire bytes mid-body, so clients must fingerprint what they did receive.
func blockpage(truncateAt int) []byte {
	body := "<html><head><title>403 Forbidden</title></head>" +
		"<body><h1>Access Denied</h1><p>This page has been blocked by order " +
		"of the relevant authorities. If you believe this is in error, " +
		"contact your service provider and quote this incident.</p>" +
		"</body></html>"
	page := []byte("HTTP/1.1 403 Forbidden\r\n" +
		"Content-Type: text/html\r\n" +
		"Content-Length: " + itoa(len(body)) + "\r\n" +
		"Connection: close\r\n" +
		"\r\n" + body)
	if truncateAt > 0 && truncateAt < len(page) {
		page = page[:truncateAt]
	}
	return page
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
