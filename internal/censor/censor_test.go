package censor

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"time"

	"safemeasure/internal/dnswire"
	"safemeasure/internal/netsim"
	"safemeasure/internal/tcpsim"
)

var (
	cliAddr    = netip.MustParseAddr("10.1.0.10")
	srvAddr    = netip.MustParseAddr("203.0.113.80")
	dnsAddr    = netip.MustParseAddr("203.0.113.53")
	poisonAddr = netip.MustParseAddr("198.18.0.1")
	rtrAddr    = netip.MustParseAddr("10.1.0.1")
)

type env struct {
	sim    *netsim.Sim
	client *netsim.Host
	server *netsim.Host
	dns    *netsim.Host
	router *netsim.Router
	cs, ss *tcpsim.Stack
	censor *Censor
}

func newEnv(t *testing.T, cfg Config) *env {
	t.Helper()
	sim := netsim.NewSim(3)
	e := &env{
		sim:    sim,
		client: netsim.NewHost(sim, "client", cliAddr),
		server: netsim.NewHost(sim, "server", srvAddr),
		dns:    netsim.NewHost(sim, "dns", dnsAddr),
		router: netsim.NewRouter(sim, "r", rtrAddr, 3),
	}
	netsim.AttachHost(sim, e.client, e.router, 0, time.Millisecond)
	netsim.AttachHost(sim, e.server, e.router, 1, 4*time.Millisecond)
	netsim.AttachHost(sim, e.dns, e.router, 2, 4*time.Millisecond)
	e.router.AddRoute(netip.PrefixFrom(cliAddr, 32), 0)
	e.router.AddRoute(netip.PrefixFrom(srvAddr, 32), 1)
	e.router.AddRoute(netip.PrefixFrom(dnsAddr, 32), 2)
	var err error
	e.censor, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.router.AddTap(e.censor)
	e.cs = tcpsim.NewStack(e.client)
	e.ss = tcpsim.NewStack(e.server)
	return e
}

func TestKeywordRSTInjection(t *testing.T) {
	e := newEnv(t, Config{Keywords: []string{"falun"}})
	e.ss.Listen(80, func(c *tcpsim.Conn) {})
	var failErr error
	c := e.cs.Dial(srvAddr, 80)
	c.OnConnect = func(c *tcpsim.Conn) { c.Send([]byte("GET /falun HTTP/1.1\r\n\r\n")) }
	c.OnFail = func(c *tcpsim.Conn, err error) { failErr = err }
	e.sim.Run()
	if !errors.Is(failErr, tcpsim.ErrReset) {
		t.Fatalf("client err = %v, want reset", failErr)
	}
	if e.censor.RSTsInjected < 2 {
		t.Fatalf("RSTs injected = %d", e.censor.RSTsInjected)
	}
	evs := e.censor.EventsByMechanism()
	if evs[MechKeywordRST] == 0 {
		t.Fatalf("events: %v", evs)
	}
}

func TestKeywordSplitAcrossSegments(t *testing.T) {
	// Stream reassembly in the censor catches keywords split across
	// segments — sending "fal" then "un" still triggers.
	e := newEnv(t, Config{Keywords: []string{"falun"}})
	e.ss.Listen(80, func(c *tcpsim.Conn) {})
	var failErr error
	c := e.cs.Dial(srvAddr, 80)
	c.OnConnect = func(c *tcpsim.Conn) {
		c.Send([]byte("GET /fal"))
		c.Send([]byte("un HTTP/1.1\r\n\r\n"))
	}
	c.OnFail = func(c *tcpsim.Conn, err error) { failErr = err }
	e.sim.Run()
	if !errors.Is(failErr, tcpsim.ErrReset) {
		t.Fatalf("client err = %v, want reset", failErr)
	}
}

func TestInnocuousTrafficUntouched(t *testing.T) {
	e := newEnv(t, Config{Keywords: []string{"falun"}, BlockedDomains: []string{"twitter.com"}, PoisonAddr: poisonAddr})
	var got []byte
	e.ss.Listen(80, func(c *tcpsim.Conn) {
		c.OnData = func(c *tcpsim.Conn, data []byte) { c.Send([]byte("HTTP/1.1 200 OK\r\n\r\n")) }
	})
	c := e.cs.Dial(srvAddr, 80)
	c.OnConnect = func(c *tcpsim.Conn) { c.Send([]byte("GET /news HTTP/1.1\r\nHost: bbc.test\r\n\r\n")) }
	c.OnData = func(c *tcpsim.Conn, data []byte) { got = append(got, data...) }
	e.sim.Run()
	if !bytes.Contains(got, []byte("200 OK")) {
		t.Fatalf("innocuous request failed: %q", got)
	}
	if len(e.censor.Events) != 0 {
		t.Fatalf("events on innocuous traffic: %v", e.censor.Events)
	}
}

func TestDNSPoisoningWinsRace(t *testing.T) {
	e := newEnv(t, Config{BlockedDomains: []string{"twitter.com"}, PoisonAddr: poisonAddr})
	// Real DNS server answers with the true address.
	trueAddr := netip.MustParseAddr("199.16.156.6")
	e.dns.BindUDP(53, func(h *netsim.Host, src netip.Addr, sp uint16, payload []byte) {
		q, err := dnswire.ParseMessage(payload)
		if err != nil {
			return
		}
		r := q.Reply()
		r.Answers = []dnswire.RR{{Name: q.Questions[0].Name, Type: dnswire.TypeA, TTL: 60, A: trueAddr}}
		out, _ := r.Marshal()
		h.SendUDP(53, src, sp, out)
	})
	var answers []netip.Addr
	e.client.BindUDP(5353, func(h *netsim.Host, src netip.Addr, sp uint16, payload []byte) {
		m, err := dnswire.ParseMessage(payload)
		if err != nil || len(m.Answers) == 0 {
			return
		}
		answers = append(answers, m.Answers[0].A)
	})
	q := dnswire.NewQuery(1, "www.twitter.com", dnswire.TypeA)
	wire, _ := q.Marshal()
	e.client.SendUDP(5353, dnsAddr, 53, wire)
	e.sim.Run()
	if len(answers) != 2 {
		t.Fatalf("answers = %v (want forged + real)", answers)
	}
	// The forged answer must arrive first (injected at the router, closer
	// than the resolver).
	if answers[0] != poisonAddr {
		t.Fatalf("first answer %v, want poison %v", answers[0], poisonAddr)
	}
	if answers[1] != trueAddr {
		t.Fatalf("second answer %v, want true %v", answers[1], trueAddr)
	}
}

func TestDNSPoisonAppliesToMXQueries(t *testing.T) {
	e := newEnv(t, Config{BlockedDomains: []string{"twitter.com"}, PoisonAddr: poisonAddr})
	var got *dnswire.Message
	e.client.BindUDP(5353, func(h *netsim.Host, src netip.Addr, sp uint16, payload []byte) {
		m, err := dnswire.ParseMessage(payload)
		if err == nil {
			got = m
		}
	})
	q := dnswire.NewQuery(2, "twitter.com", dnswire.TypeMX)
	wire, _ := q.Marshal()
	e.client.SendUDP(5353, dnsAddr, 53, wire)
	e.sim.Run()
	if got == nil || len(got.Answers) == 0 {
		t.Fatal("no forged answer for MX query")
	}
	// The GFC quirk: the forged answer is an A record even for MX queries.
	if got.Answers[0].Type != dnswire.TypeA || got.Answers[0].A != poisonAddr {
		t.Fatalf("forged answer: %+v", got.Answers[0])
	}
}

func TestDNSSubdomainBlocked(t *testing.T) {
	c, err := New(Config{BlockedDomains: []string{"twitter.com"}, PoisonAddr: poisonAddr})
	if err != nil {
		t.Fatal(err)
	}
	if dom, ok := c.domainBlocked("api.Twitter.COM"); !ok || dom != "twitter.com" {
		t.Fatalf("subdomain: %q %v", dom, ok)
	}
	if _, ok := c.domainBlocked("nottwitter.com"); ok {
		t.Fatal("suffix over-match: nottwitter.com blocked")
	}
}

func TestIPBlackhole(t *testing.T) {
	e := newEnv(t, Config{Blackholed: []netip.Prefix{netip.PrefixFrom(srvAddr, 32)}})
	var failErr error
	c := e.cs.Dial(srvAddr, 80)
	c.OnFail = func(c *tcpsim.Conn, err error) { failErr = err }
	e.sim.Run()
	if !errors.Is(failErr, tcpsim.ErrTimeout) {
		t.Fatalf("err = %v, want timeout (silent drop)", failErr)
	}
	if e.censor.Dropped == 0 {
		t.Fatal("censor dropped nothing")
	}
}

func TestPortBlock(t *testing.T) {
	e := newEnv(t, Config{BlockedPorts: []uint16{443}})
	e.ss.Listen(443, func(c *tcpsim.Conn) {})
	e.ss.Listen(80, func(c *tcpsim.Conn) {})
	var failed, connected bool
	c := e.cs.Dial(srvAddr, 443)
	c.OnFail = func(c *tcpsim.Conn, err error) { failed = true }
	c2 := e.cs.Dial(srvAddr, 80)
	c2.OnConnect = func(c *tcpsim.Conn) { connected = true }
	e.sim.Run()
	if !failed {
		t.Fatal("blocked port connected")
	}
	if !connected {
		t.Fatal("open port blocked")
	}
}

func TestHostHeaderBlock(t *testing.T) {
	e := newEnv(t, Config{BlockedDomains: []string{"banned.test"}, PoisonAddr: poisonAddr})
	e.ss.Listen(80, func(c *tcpsim.Conn) {})
	var failErr error
	c := e.cs.Dial(srvAddr, 80)
	c.OnConnect = func(c *tcpsim.Conn) {
		c.Send([]byte("GET / HTTP/1.1\r\nHost: banned.test\r\n\r\n"))
	}
	c.OnFail = func(c *tcpsim.Conn, err error) { failErr = err }
	e.sim.Run()
	if !errors.Is(failErr, tcpsim.ErrReset) {
		t.Fatalf("err = %v, want reset", failErr)
	}
	if e.censor.EventsByMechanism()[MechHostBlock] == 0 {
		t.Fatalf("events: %v", e.censor.EventsByMechanism())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{BlockedDomains: []string{"x.test"}}); err == nil {
		t.Fatal("missing PoisonAddr accepted")
	}
	if _, err := New(Config{}); err != nil {
		t.Fatalf("empty config rejected: %v", err)
	}
}

func TestMechanismString(t *testing.T) {
	names := map[Mechanism]string{
		MechKeywordRST: "keyword-rst", MechDNSPoison: "dns-poison",
		MechIPBlackhole: "ip-blackhole", MechPortBlock: "port-block", MechHostBlock: "host-block",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d = %q, want %q", m, m.String(), want)
		}
	}
}
