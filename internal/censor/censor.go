// Package censor implements the censorship middlebox: a transaction-focused
// IDS (paper §2.1) that reacts to restricted content in real time and keeps
// no user history beyond its flow table. It models the Great Firewall
// mechanisms the paper cites:
//
//   - keyword-triggered TCP RST injection (Clayton et al.; paper §3.2.1)
//   - DNS response poisoning with forged A records, injected for both A and
//     MX queries (paper §3.2.3: validated against twitter.com/youtube.com)
//   - IP blackholing (silent drops)
//   - TCP port blocking
//   - HTTP Host-header blocking
//
// The censor attaches to a router as an inline tap. Being functionally
// off-path for injection mechanisms, it passes the original packet through
// and races its forged packet against the real answer, which the simulator
// resolves in the censor's favour exactly as on real networks (the forged
// reply is generated at the middlebox, several hops closer than the
// destination).
package censor

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"safemeasure/internal/dnswire"
	"safemeasure/internal/ids"
	"safemeasure/internal/netsim"
	"safemeasure/internal/packet"
	"safemeasure/internal/telemetry"
)

// Mechanism identifies which censorship mechanism acted.
type Mechanism int

// Censorship mechanisms.
const (
	MechKeywordRST Mechanism = iota
	MechDNSPoison
	MechIPBlackhole
	MechPortBlock
	MechHostBlock
)

// String returns a short mechanism name.
func (m Mechanism) String() string {
	return [...]string{"keyword-rst", "dns-poison", "ip-blackhole", "port-block", "host-block"}[m]
}

// Event is one censorship action, the censor's transaction log entry.
// (Unlike the surveillance system the censor retains no per-user history;
// this log exists for experiment ground truth and mirrors the kind of proxy
// logs leaked from Syria.)
type Event struct {
	Time      int64
	Mechanism Mechanism
	Flow      packet.Flow
	Detail    string // keyword, domain, or prefix that triggered
}

// Config declares what to censor.
type Config struct {
	// Keywords trigger RST injection when seen in TCP streams (nocase).
	Keywords []string
	// BlockedDomains are DNS-poisoned and Host-header-blocked (suffix
	// match: "twitter.com" also blocks "www.twitter.com").
	BlockedDomains []string
	// PoisonAddr is the forged A record target. Required when
	// BlockedDomains is non-empty.
	PoisonAddr netip.Addr
	// Blackholed prefixes are dropped silently in both directions.
	Blackholed []netip.Prefix
	// BlockedPorts drops TCP SYNs to these destination ports.
	BlockedPorts []uint16
	// DisableReassembly turns off the censor's IP-fragment reassembly.
	// The GFC reassembles (Khattak et al. probed exactly how), so the
	// default is on; disabling it reproduces the classic fragmentation
	// evasion and is used by the E12 ablation.
	DisableReassembly bool
	// ResidualBlock, when nonzero, keeps resetting ALL TCP traffic between
	// a (client, server) address pair for this long (virtual time) after a
	// keyword/Host trigger — the GFC's residual blocking documented by
	// Clayton et al.
	ResidualBlock time.Duration
}

// addrPair is a direction-independent (client, server) address pair.
type addrPair struct {
	a, b netip.Addr
}

func pairOf(x, y netip.Addr) addrPair {
	if x.Compare(y) > 0 {
		x, y = y, x
	}
	return addrPair{x, y}
}

// Censor is the middlebox. Attach it to a router with router.AddTap.
type Censor struct {
	cfg      Config
	engine   *ids.Engine
	reasm    *packet.Reassembler
	residual map[addrPair]int64 // pair -> expiry (virtual ns)
	Events   []Event

	// Adversarial behavior (nil = deterministic censor; see SetBehavior).
	bhv *behaviorState

	// Stats.
	RSTsInjected    int
	ResponsesForged int
	Dropped         int
	ResidualRSTs    int
	Enforced        int // enforcement actions taken
	Skipped         int // enforcement actions the behavior model skipped

	// Telemetry (optional; see SetTelemetry).
	trace                   *telemetry.Tracer
	mEvents, mRSTs, mForged *telemetry.Counter
	mDropped                *telemetry.Counter
	mEnforced, mSkipped     *telemetry.Counter
}

// SetTelemetry wires the censor's actions into a metrics registry and
// packet-path tracer. Either argument may be nil; the lab calls this for
// every run that has telemetry enabled.
func (c *Censor) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	c.trace = tr
	c.mEvents = reg.Counter("censor_events_total")
	c.mRSTs = reg.Counter("censor_rst_injected_total")
	c.mForged = reg.Counter("censor_dns_forged_total")
	c.mDropped = reg.Counter("censor_dropped_total")
	c.mEnforced = reg.Counter("censor_enforced_total")
	c.mSkipped = reg.Counter("censor_skipped_total")
	c.engine.SetMetrics(reg.Counter("censor_ids_packets_total"),
		reg.Counter("censor_ids_alerts_total"))
}

// Compiled is the immutable, compile-once half of a censor: the validated
// config and its ruleset compiled through the Snort-like rule engine — the
// censor is an IDS configuration, per the paper's framing. One Compiled may
// back any number of concurrent Censors (see New on Compiled).
type Compiled struct {
	cfg   Config
	rules *ids.CompiledRules
}

// Compile validates cfg and compiles its keyword and host rules.
func Compile(cfg Config) (*Compiled, error) {
	var rules strings.Builder
	sid := 9000
	for _, kw := range cfg.Keywords {
		fmt.Fprintf(&rules, "alert tcp any any <> any any (msg:\"censor keyword %s\"; content:\"%s\"; nocase; sid:%d; classtype:censor-keyword;)\n", kw, kw, sid)
		sid++
	}
	for _, dom := range cfg.BlockedDomains {
		// Host-header form; DNS is handled natively in the censor because
		// forging a response requires parsing the query, not just matching.
		fmt.Fprintf(&rules, "alert tcp any any -> any 80 (msg:\"censor host %s\"; content:\"Host: %s\"; nocase; sid:%d; classtype:censor-host;)\n", dom, dom, sid)
		sid++
	}
	parsed, err := ids.ParseRules(rules.String(), nil)
	if err != nil {
		return nil, fmt.Errorf("censor: building ruleset: %w", err)
	}
	if len(cfg.BlockedDomains) > 0 && !cfg.PoisonAddr.IsValid() {
		return nil, fmt.Errorf("censor: BlockedDomains set but no PoisonAddr")
	}
	return &Compiled{cfg: cfg, rules: ids.Compile(parsed)}, nil
}

// Config returns the config the ruleset was compiled from.
func (cc *Compiled) Config() Config { return cc.cfg }

// New builds a fresh censor over the compiled ruleset. All mutable state
// (IDS engine, reassembler, residual table, stats) is per-censor; the
// receiver is only read, so concurrent News are safe.
func (cc *Compiled) New() *Censor {
	c := &Censor{cfg: cc.cfg, engine: cc.rules.NewEngine(), residual: make(map[addrPair]int64)}
	if !cc.cfg.DisableReassembly {
		c.reasm = packet.NewReassembler()
	}
	return c
}

// New builds a censor from cfg, compiling its ruleset. Callers constructing
// many censors from one config should Compile once and call New on that.
func New(cfg Config) (*Censor, error) {
	cc, err := Compile(cfg)
	if err != nil {
		return nil, err
	}
	return cc.New(), nil
}

// Engine exposes the underlying IDS engine (stats, flow table size).
func (c *Censor) Engine() *ids.Engine { return c.engine }

// domainBlocked reports whether name or any parent domain is blocked.
func (c *Censor) domainBlocked(name string) (string, bool) {
	name = dnswire.CanonicalName(name)
	for _, dom := range c.cfg.BlockedDomains {
		dom = dnswire.CanonicalName(dom)
		if name == dom || strings.HasSuffix(name, "."+dom) {
			return dom, true
		}
	}
	return "", false
}

// Observe implements netsim.Tap.
func (c *Censor) Observe(tp *netsim.TapPacket, inject netsim.Injector) netsim.Verdict {
	// 1. Blackholed prefixes: silent drop, both directions. This needs
	// only the IP header, so it applies to every fragment too.
	var hdr packet.IPv4
	if err := hdr.DecodeFromBytes(tp.Raw); err != nil {
		return netsim.Pass
	}
	for _, p := range c.cfg.Blackholed {
		if p.Contains(hdr.Dst) || p.Contains(hdr.Src) {
			// The intermittent decision is per address pair here: either
			// all traffic between the two hosts is eaten, or none is.
			if !c.enforce(tp.Time, pairKey(hdr.Src, hdr.Dst)) {
				return netsim.Pass
			}
			c.Dropped++
			c.mDropped.Inc()
			c.log(tp.Time, MechIPBlackhole, &packet.Packet{IP: &hdr}, p.String())
			return netsim.Drop
		}
	}

	pkt := tp.Pkt
	if pkt == nil {
		// Possibly a fragment. An off-path censor that reassembles can
		// still act once the datagram completes — too late to drop the
		// pieces it already passed, but injection (RST, forged DNS)
		// works, exactly like the GFC.
		if c.reasm != nil && packet.IsFragment(tp.Raw) {
			if whole := c.reasm.Add(tp.Time, tp.Raw); whole != nil {
				if full, err := packet.Parse(whole); err == nil {
					c.inspect(tp.Time, full, inject)
				}
			}
		}
		return netsim.Pass
	}

	if c.inspect(tp.Time, pkt, inject) == netsim.Drop {
		return netsim.Drop
	}

	// Throttling: a pair marked by an earlier alert has all its TCP traffic
	// rate-shaped instead of torn down. Both directions traverse this tap,
	// so both directions are charged against the pair's bucket.
	if delay, ok := c.shapeVerdict(tp, pkt); ok && delay > 0 {
		tp.Delay = delay
		return netsim.Shape
	}
	return netsim.Pass
}

// inspect runs the transaction-level mechanisms (port block, DNS poison,
// keyword/Host rules) against a fully parsed datagram. The returned verdict
// is honored only for inline (non-reassembled) packets.
func (c *Censor) inspect(now int64, pkt *packet.Packet, inject netsim.Injector) netsim.Verdict {
	// 2. Blocked TCP ports: drop the SYN (connection never forms).
	if pkt.TCP != nil && pkt.TCP.Flags&packet.TCPSyn != 0 && pkt.TCP.Flags&packet.TCPAck == 0 {
		for _, port := range c.cfg.BlockedPorts {
			if pkt.TCP.DstPort == port {
				if !c.enforce(now, transportKey(pkt)) {
					break
				}
				c.Dropped++
				c.mDropped.Inc()
				c.log(now, MechPortBlock, pkt, fmt.Sprintf("port %d", port))
				return netsim.Drop
			}
		}
	}

	// 3. DNS poisoning: forge an answer for blocked names. The real
	// response still flows; the forged one wins the race.
	if pkt.UDP != nil && pkt.UDP.DstPort == 53 {
		if dom, ok := c.dnsQueryBlocked(pkt); ok && c.enforce(now, transportKey(pkt)) {
			c.forgeDNSReply(now, pkt, inject)
			c.log(now, MechDNSPoison, pkt, dom)
		}
	}

	// 4. Residual blocking: a previously triggered (client, server) pair
	// keeps eating RSTs until the penalty expires.
	if c.cfg.ResidualBlock > 0 && pkt.TCP != nil {
		pair := pairOf(pkt.IP.Src, pkt.IP.Dst)
		if expiry, ok := c.residual[pair]; ok {
			if now < expiry {
				if c.enforce(now, transportKey(pkt)) {
					c.ResidualRSTs++
					c.injectRSTPair(now, pkt, inject)
				}
				return netsim.Pass
			}
			delete(c.residual, pair)
		}
	}

	// 5. Keyword / Host rules through the IDS engine. The engine always
	// sees the traffic (the flow table is real); the behavior model gates
	// only the *response* — which is RST injection, or under the
	// adversarial behaviors, throttle-marking or a truncated blockpage.
	for _, alert := range c.engine.Feed(now, pkt) {
		mech := MechKeywordRST
		if alert.Rule.Classtype == "censor-host" {
			mech = MechHostBlock
		}
		if !c.enforce(now, transportKey(pkt)) {
			continue
		}
		switch {
		case c.bhv != nil && c.bhv.b.ThrottleRate > 0:
			c.markThrottled(pairOf(pkt.IP.Src, pkt.IP.Dst))
		case c.bhv != nil && c.bhv.b.BlockpageBytes > 0:
			c.injectBlockpage(now, pkt, inject)
		default:
			c.injectRSTPair(now, pkt, inject)
		}
		c.log(now, mech, pkt, alert.Rule.Msg)
		if c.cfg.ResidualBlock > 0 {
			c.residual[pairOf(pkt.IP.Src, pkt.IP.Dst)] = now + int64(c.cfg.ResidualBlock)
		}
	}

	return netsim.Pass
}

// transportKey builds the direction-normalized flow key for the
// intermittent decision. Packets without a transport layer fall back to the
// address pair.
func transportKey(pkt *packet.Packet) flowKey {
	switch {
	case pkt.TCP != nil:
		return flowKeyOf(pkt.IP.Src, pkt.IP.Dst, pkt.TCP.SrcPort, pkt.TCP.DstPort)
	case pkt.UDP != nil:
		return flowKeyOf(pkt.IP.Src, pkt.IP.Dst, pkt.UDP.SrcPort, pkt.UDP.DstPort)
	default:
		return pairKey(pkt.IP.Src, pkt.IP.Dst)
	}
}

// dnsQueryBlocked parses a DNS query and checks its first question.
func (c *Censor) dnsQueryBlocked(pkt *packet.Packet) (string, bool) {
	msg, err := dnswire.ParseMessage(pkt.UDP.Payload)
	if err != nil || msg.Response || len(msg.Questions) == 0 {
		return "", false
	}
	q := msg.Questions[0]
	// The GFC injects for both A and MX lookups (paper §3.2.3).
	if q.Type != dnswire.TypeA && q.Type != dnswire.TypeMX {
		return "", false
	}
	return c.domainBlocked(q.Name)
}

// forgeDNSReply injects a response with a bogus A record toward the client.
// Note the forged answer is an A record even for MX queries — the observed
// GFC behaviour the paper validated from a PlanetLab node in China.
func (c *Censor) forgeDNSReply(now int64, pkt *packet.Packet, inject netsim.Injector) {
	msg, err := dnswire.ParseMessage(pkt.UDP.Payload)
	if err != nil || len(msg.Questions) == 0 {
		return
	}
	reply := msg.Reply()
	reply.Authoritative = true
	reply.Answers = []dnswire.RR{{
		Name: msg.Questions[0].Name, Type: dnswire.TypeA, Class: dnswire.ClassIN,
		TTL: 300, A: c.cfg.PoisonAddr,
	}}
	payload, err := reply.Marshal()
	if err != nil {
		return
	}
	raw, err := packet.BuildUDP(pkt.IP.Dst, pkt.IP.Src, packet.DefaultTTL, &packet.UDP{
		SrcPort: pkt.UDP.DstPort, DstPort: pkt.UDP.SrcPort, Payload: payload,
	})
	if err != nil {
		return
	}
	c.ResponsesForged++
	c.mForged.Inc()
	if tr := c.trace; tr != nil {
		tr.Emit(now, telemetry.EvDNSForge,
			pkt.IP.Src.String(), pkt.IP.Dst.String(), msg.Questions[0].Name)
	}
	inject.Inject(raw)
}

// injectRSTPair sends RSTs to both endpoints of the flow, the GFC teardown.
// Under the lazy-injector behavior the (already built) RSTs are released
// InjectDelay of virtual time after the trigger instead of immediately.
func (c *Censor) injectRSTPair(now int64, pkt *packet.Packet, inject netsim.Injector) {
	if pkt.TCP == nil {
		return
	}
	t := pkt.TCP
	var raws [][]byte
	// To the sender: appears to come from the receiver.
	toSender := &packet.TCP{SrcPort: t.DstPort, DstPort: t.SrcPort, Seq: t.Ack, Flags: packet.TCPRst}
	if raw, err := packet.BuildTCP(pkt.IP.Dst, pkt.IP.Src, packet.DefaultTTL, toSender); err == nil {
		raws = append(raws, raw)
	}
	// To the receiver: appears to come from the sender, sequenced after the
	// offending segment.
	toReceiver := &packet.TCP{SrcPort: t.SrcPort, DstPort: t.DstPort,
		Seq: t.Seq + uint32(len(t.Payload)), Flags: packet.TCPRst}
	if raw, err := packet.BuildTCP(pkt.IP.Src, pkt.IP.Dst, packet.DefaultTTL, toReceiver); err == nil {
		raws = append(raws, raw)
	}
	c.RSTsInjected += len(raws)
	for range raws {
		c.mRSTs.Inc()
	}
	c.injectLazy(func() {
		for _, raw := range raws {
			inject.Inject(raw)
		}
	})
	if tr := c.trace; tr != nil {
		tr.Emit(now, telemetry.EvRSTInject,
			pkt.IP.Src.String(), pkt.IP.Dst.String(), "rst-pair")
	}
}

// injectBlockpage forges a truncated HTTP 403 toward the client (data +
// FIN, Content-Length promising more bytes than are sent) and a RST toward
// the server — the partial-blockpage behavior. The client sees a response
// that starts like a blockpage and dies mid-body.
func (c *Censor) injectBlockpage(now int64, pkt *packet.Packet, inject netsim.Injector) {
	if pkt.TCP == nil {
		return
	}
	t := pkt.TCP
	page := blockpage(c.bhv.b.BlockpageBytes)
	ackNo := t.Seq + uint32(len(t.Payload))
	// Forged response data toward the client, from the server's identity.
	data := &packet.TCP{SrcPort: t.DstPort, DstPort: t.SrcPort,
		Seq: t.Ack, Ack: ackNo, Flags: packet.TCPPsh | packet.TCPAck, Payload: page}
	if raw, err := packet.BuildTCP(pkt.IP.Dst, pkt.IP.Src, packet.DefaultTTL, data); err == nil {
		inject.Inject(raw)
		c.ResponsesForged++
		c.mForged.Inc()
	}
	// FIN after the truncated body: the forged server hangs up mid-page.
	fin := &packet.TCP{SrcPort: t.DstPort, DstPort: t.SrcPort,
		Seq: t.Ack + uint32(len(page)), Ack: ackNo, Flags: packet.TCPFin | packet.TCPAck}
	if raw, err := packet.BuildTCP(pkt.IP.Dst, pkt.IP.Src, packet.DefaultTTL, fin); err == nil {
		inject.Inject(raw)
	}
	// The server side is still reset so the real response never races the
	// forgery.
	toServer := &packet.TCP{SrcPort: t.SrcPort, DstPort: t.DstPort,
		Seq: ackNo, Flags: packet.TCPRst}
	if raw, err := packet.BuildTCP(pkt.IP.Src, pkt.IP.Dst, packet.DefaultTTL, toServer); err == nil {
		inject.Inject(raw)
		c.RSTsInjected++
		c.mRSTs.Inc()
	}
	if tr := c.trace; tr != nil {
		tr.Emit(now, telemetry.EvRSTInject,
			pkt.IP.Src.String(), pkt.IP.Dst.String(), "blockpage-truncated")
	}
}

func (c *Censor) log(now int64, mech Mechanism, pkt *packet.Packet, detail string) {
	c.Events = append(c.Events, Event{Time: now, Mechanism: mech, Flow: packet.FlowOf(pkt), Detail: detail})
	c.mEvents.Inc()
	if tr := c.trace; tr != nil && pkt.IP != nil {
		tr.Emit(now, telemetry.EvCensorAlert,
			pkt.IP.Src.String(), pkt.IP.Dst.String(), mech.String()+": "+detail)
	}
}

// EventsByMechanism tallies logged events.
func (c *Censor) EventsByMechanism() map[Mechanism]int {
	out := make(map[Mechanism]int)
	for _, ev := range c.Events {
		out[ev.Mechanism]++
	}
	return out
}
