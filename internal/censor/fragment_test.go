package censor

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"net/netip"
	"safemeasure/internal/httpwire"

	"safemeasure/internal/netsim"
	"safemeasure/internal/packet"
	"safemeasure/internal/tcpsim"
	"safemeasure/internal/websim"
)

// sendFragmentedKeyword crafts a keyword-bearing TCP segment, fragments it
// at the IP layer, and sends the pieces from the client.
func sendFragmentedKeyword(t *testing.T, e *env, mtu int) {
	t.Helper()
	raw, err := packet.BuildTCP(cliAddr, srvAddr, 64, &packet.TCP{
		SrcPort: 4321, DstPort: 80, Flags: packet.TCPPsh | packet.TCPAck,
		Payload: []byte("GET /falun HTTP/1.1\r\nHost: site.test\r\n\r\n padding padding padding"),
	})
	if err != nil {
		t.Fatal(err)
	}
	frags, err := packet.Fragment(raw, mtu)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 2 {
		t.Fatalf("payload did not fragment (%d pieces)", len(frags))
	}
	for _, f := range frags {
		e.client.SendIP(f)
	}
}

func TestFragmentedKeywordCaughtWithReassembly(t *testing.T) {
	e := newEnv(t, Config{Keywords: []string{"falun"}})
	var sawRST bool
	e.client.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		if pkt.TCP != nil && pkt.TCP.Flags&packet.TCPRst != 0 {
			sawRST = true
		}
	})
	sendFragmentedKeyword(t, e, 16)
	e.sim.Run()
	if !sawRST {
		t.Fatal("reassembling censor missed the fragmented keyword")
	}
	if e.censor.EventsByMechanism()[MechKeywordRST] == 0 {
		t.Fatalf("events: %v", e.censor.EventsByMechanism())
	}
}

func TestFragmentedKeywordEvadesWithoutReassembly(t *testing.T) {
	e := newEnv(t, Config{Keywords: []string{"falun"}, DisableReassembly: true})
	sendFragmentedKeyword(t, e, 16)
	e.sim.Run()
	// The server's own closed-port RST still flows (hosts reassemble), but
	// the censor itself must stay blind: no injections, no events.
	if e.censor.RSTsInjected != 0 {
		t.Fatalf("non-reassembling censor injected %d RSTs", e.censor.RSTsInjected)
	}
	if len(e.censor.Events) != 0 {
		t.Fatalf("events: %v", e.censor.Events)
	}
}

func TestFragmentedDatagramStillReachesServer(t *testing.T) {
	// Hosts always reassemble: the fragmented request must arrive whole at
	// the server even when the censor is blind to it.
	e := newEnv(t, Config{Keywords: []string{"falun"}, DisableReassembly: true})
	var got []byte
	e.server.TCPDispatch = nil // raw: capture via sniffer
	e.server.AddSniffer(func(raw []byte, pkt *packet.Packet) {
		if pkt.TCP != nil && len(pkt.TCP.Payload) > 0 {
			got = append([]byte(nil), pkt.TCP.Payload...)
		}
	})
	sendFragmentedKeyword(t, e, 16)
	e.sim.Run()
	if !bytes.Contains(got, []byte("falun")) {
		t.Fatalf("server got %q", got)
	}
}

func TestBlackholeAppliesToFragments(t *testing.T) {
	cfg := Config{Blackholed: []netip.Prefix{netip.PrefixFrom(srvAddr, 32)}}
	e := newEnv(t, cfg)
	sendFragmentedKeyword(t, e, 16)
	e.sim.Run()
	if e.server.Received != 0 {
		t.Fatal("fragments leaked through blackhole")
	}
	if e.censor.Dropped == 0 {
		t.Fatal("censor dropped nothing")
	}
}

func TestResidualBlocking(t *testing.T) {
	e := newEnv(t, Config{Keywords: []string{"falun"}, ResidualBlock: 10 * time.Second})
	websrv, err := websim.NewServer(e.ss)
	if err != nil {
		t.Fatal(err)
	}
	_ = websrv

	// 1. Trigger the keyword: connection dies.
	var firstErr error
	websim.Get(e.cs, srvAddr, "site.test", "/falun", func(r *httpwire.Response, err error) { firstErr = err })
	e.sim.Run()
	if firstErr == nil {
		t.Fatal("keyword request survived")
	}

	// 2. A clean request between the same pair inside the penalty window
	// also dies (residual blocking).
	var cleanErr error
	websim.Get(e.cs, srvAddr, "site.test", "/innocuous", func(r *httpwire.Response, err error) { cleanErr = err })
	e.sim.Run()
	if !errors.Is(cleanErr, websim.ErrConnection) {
		t.Fatalf("clean request inside penalty: err = %v", cleanErr)
	}
	if e.censor.ResidualRSTs == 0 {
		t.Fatal("no residual RSTs counted")
	}

	// 3. After the penalty expires, the same pair works again.
	e.sim.RunFor(11 * time.Second)
	var lateResp *httpwire.Response
	websim.Get(e.cs, srvAddr, "site.test", "/innocuous", func(r *httpwire.Response, err error) { lateResp = r })
	e.sim.Run()
	if lateResp == nil || lateResp.Status != 200 {
		t.Fatalf("post-penalty request failed: %+v", lateResp)
	}
}

func TestResidualDisabledByDefault(t *testing.T) {
	e := newEnv(t, Config{Keywords: []string{"falun"}})
	if _, err := websim.NewServer(e.ss); err != nil {
		t.Fatal(err)
	}
	websim.Get(e.cs, srvAddr, "site.test", "/falun", func(*httpwire.Response, error) {})
	e.sim.Run()
	var resp *httpwire.Response
	websim.Get(e.cs, srvAddr, "site.test", "/clean", func(r *httpwire.Response, err error) { resp = r })
	e.sim.Run()
	if resp == nil || resp.Status != 200 {
		t.Fatalf("clean request failed without residual blocking: %+v", resp)
	}
	_ = tcpsim.ErrReset
	_ = netsim.Pass
}
